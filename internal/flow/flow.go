// Package flow implements the optical-flow-based tracking-by-detection
// the cameras run between full-frame inspections. Detection boxes are
// associated with existing track trajectories by IoU through the
// Hungarian algorithm; each track carries an exponentially smoothed pixel
// velocity (the simulated optical-flow motion estimate) used to predict
// its next location, which in turn defines the partial inspection region
// for the next frame.
//
// The package also provides the paper's "new region" mechanism: clusters
// of moving pixels not explained by any predicted track box are proposed
// as regions where a new object may have appeared, so arrivals are
// noticed before the next key frame.
package flow

import (
	"fmt"
	"sort"

	"mvs/internal/geom"
	"mvs/internal/hungarian"
	"mvs/internal/vision"
)

// Track is one tracked object on one camera.
type Track struct {
	// ID is the camera-local track identifier.
	ID int
	// TruthID is the ground-truth identity of the last matched detection
	// (scoring only).
	TruthID int
	// Box is the current estimated bounding box.
	Box geom.Rect
	// Velocity is the smoothed per-frame pixel motion of the box centre.
	Velocity geom.Point
	// QuantSize is the quantized target size for partial inspection,
	// fixed within a scheduling horizon.
	QuantSize int
	// Age is the number of frames since the track was created.
	Age int
	// Missed is the number of consecutive frames without a matched
	// detection.
	Missed int
}

// Predicted returns the track's box advanced one frame by its velocity.
func (t *Track) Predicted() geom.Rect {
	return t.Box.Translate(t.Velocity)
}

// Config tunes the tracker.
type Config struct {
	// MatchIoU is the minimum IoU for a detection-track association
	// (default 0.25).
	MatchIoU float64
	// MaxMissed is how many frames a track survives without detections
	// before being dropped (default 3).
	MaxMissed int
	// SmoothAlpha is the velocity smoothing factor: 1 = use only the
	// newest displacement (default 0.5).
	SmoothAlpha float64
	// Sizes is the quantized size set (default geom.StandardSizes).
	Sizes []int
}

func (c Config) withDefaults() Config {
	if c.MatchIoU <= 0 {
		c.MatchIoU = 0.25
	}
	if c.MaxMissed <= 0 {
		c.MaxMissed = 3
	}
	if c.SmoothAlpha <= 0 {
		c.SmoothAlpha = 0.5
	}
	if len(c.Sizes) == 0 {
		c.Sizes = geom.StandardSizes
	}
	return c
}

// Tracker maintains the track set of one camera. Not safe for concurrent
// use.
type Tracker struct {
	cfg      Config
	allSizes []int // the full configured size set; cfg.Sizes is the capped view
	frame    geom.Rect
	nextID   int
	tracks   map[int]*Track
}

// NewTracker builds a tracker over the camera's pixel frame.
func NewTracker(frame geom.Rect, cfg Config) (*Tracker, error) {
	if frame.Empty() {
		return nil, fmt.Errorf("flow: empty camera frame")
	}
	cfg = cfg.withDefaults()
	return &Tracker{
		cfg:      cfg,
		allSizes: cfg.Sizes,
		frame:    frame,
		nextID:   1,
		tracks:   make(map[int]*Track),
	}, nil
}

// SetSizeCap caps the quantized target sizes at capPx pixels: Spawn and
// RefreshSizes quantize against the filtered size set until the cap
// changes. 0 (or any cap at or above the largest size) restores the full
// configured set; a cap below the smallest size keeps just the smallest,
// so the set is never empty. Existing tracks keep their QuantSize until
// the next RefreshSizes — the degradation ladder applies caps at key
// frames, where every track is re-quantized anyway.
func (tr *Tracker) SetSizeCap(capPx int) {
	if capPx <= 0 {
		tr.cfg.Sizes = tr.allSizes
		return
	}
	capped := tr.allSizes[:0:0]
	for _, s := range tr.allSizes {
		if s <= capPx {
			capped = append(capped, s)
		}
	}
	if len(capped) == 0 {
		capped = tr.allSizes[:1]
	}
	tr.cfg.Sizes = capped
}

// Sizes returns the size set currently in force (the configured set,
// filtered by any SetSizeCap). Callers must not mutate it; the pipeline
// quantizes new-region proposals against it so proposals and tracks
// degrade together.
func (tr *Tracker) Sizes() []int { return tr.cfg.Sizes }

// Tracks returns the live tracks sorted by ID (deterministic order).
func (tr *Tracker) Tracks() []*Track {
	out := make([]*Track, 0, len(tr.tracks))
	for _, t := range tr.tracks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live tracks.
func (tr *Tracker) Len() int { return len(tr.tracks) }

// Get returns the track with the given ID, or nil.
func (tr *Tracker) Get(id int) *Track { return tr.tracks[id] }

// Remove drops a track (used when the scheduler assigns the object to a
// different camera).
func (tr *Tracker) Remove(id int) { delete(tr.tracks, id) }

// Update advances all tracks one frame and associates the new detections
// to them. Unmatched detections become new tracks; tracks unmatched for
// more than MaxMissed frames are dropped. Matched tracks update box,
// velocity, and truth ID. It returns the IDs of newly created tracks.
func (tr *Tracker) Update(dets []vision.Detection) ([]int, error) {
	tracks := tr.Tracks()
	// Predict all current tracks forward.
	predicted := make([]geom.Rect, len(tracks))
	for i, t := range tracks {
		predicted[i] = t.Predicted()
	}

	matchedDet := make([]bool, len(dets))
	matchedTrack := make([]bool, len(tracks))
	if len(tracks) > 0 && len(dets) > 0 {
		profit := make([][]float64, len(tracks))
		for i := range tracks {
			profit[i] = make([]float64, len(dets))
			for j, d := range dets {
				profit[i][j] = predicted[i].IoU(d.Box)
			}
		}
		assign, _, err := hungarian.MaximizeProfit(profit, tr.cfg.MatchIoU)
		if err != nil {
			return nil, fmt.Errorf("flow: association: %w", err)
		}
		for i, j := range assign {
			if j < 0 {
				continue
			}
			tr.applyMatch(tracks[i], dets[j])
			matchedTrack[i] = true
			matchedDet[j] = true
		}
	}

	// Unmatched tracks coast on prediction and age toward removal.
	for i, t := range tracks {
		if matchedTrack[i] {
			continue
		}
		t.Box = predicted[i].Clamp(tr.frame)
		t.Age++
		t.Missed++
		if t.Missed > tr.cfg.MaxMissed || t.Box.Empty() {
			delete(tr.tracks, t.ID)
		}
	}

	// Unmatched detections spawn new tracks.
	var created []int
	for j, d := range dets {
		if matchedDet[j] {
			continue
		}
		id := tr.Spawn(d)
		created = append(created, id)
	}
	return created, nil
}

// applyMatch updates a track with its matched detection.
func (tr *Tracker) applyMatch(t *Track, d vision.Detection) {
	newCentre := d.Box.Center()
	delta := newCentre.Sub(t.Box.Center())
	a := tr.cfg.SmoothAlpha
	t.Velocity = geom.Point{
		X: a*delta.X + (1-a)*t.Velocity.X,
		Y: a*delta.Y + (1-a)*t.Velocity.Y,
	}
	t.Box = d.Box
	t.TruthID = d.TruthID
	t.Age++
	t.Missed = 0
}

// Spawn creates a track directly from a detection (used for new-region
// hits and for objects handed over by the scheduler) and returns its ID.
// The quantized size is chosen immediately; it stays fixed until the next
// RefreshSizes.
func (tr *Tracker) Spawn(d vision.Detection) int {
	id := tr.nextID
	tr.nextID++
	_, size := geom.QuantizeRect(d.Box, tr.frame, tr.cfg.Sizes)
	tr.tracks[id] = &Track{
		ID:        id,
		TruthID:   d.TruthID,
		Box:       d.Box,
		QuantSize: size,
	}
	return id
}

// RefreshSizes re-quantizes every track's target size. The pipeline calls
// this at key frames: "the quantized size is fixed for each object within
// a scheduling horizon".
func (tr *Tracker) RefreshSizes() {
	for _, t := range tr.tracks {
		_, size := geom.QuantizeRect(t.Box, tr.frame, tr.cfg.Sizes)
		t.QuantSize = size
	}
}

// Region returns the partial inspection region for a track: a square of
// its fixed quantized size centred on the predicted location, shifted to
// stay within the frame. If the object has grown beyond the fixed size,
// the region keeps the fixed size (the real system downsamples the
// content instead of rebatching).
func (tr *Tracker) Region(t *Track) geom.Rect {
	centre := t.Predicted().Center()
	q, _ := geom.QuantizeRect(geom.RectFromCenter(centre, 1, 1), tr.frame, []int{t.QuantSize})
	return q
}

// NewRegions implements the moving-pixel "new region" proposal: every
// ground-truth motion cluster (observation box) whose centre is not
// covered by any predicted track box becomes a candidate region, slightly
// inflated the way a flow-based cluster over-segments. minCover is the
// IoU above which a cluster counts as explained by a prediction
// (default 0.1 when <= 0).
func NewRegions(moving []geom.Rect, predicted []geom.Rect, minCover float64) []geom.Rect {
	if minCover <= 0 {
		minCover = 0.1
	}
	var out []geom.Rect
	for _, m := range moving {
		explained := false
		for _, p := range predicted {
			if p.IoU(m) >= minCover || p.Contains(m.Center()) {
				explained = true
				break
			}
		}
		if !explained {
			out = append(out, m.Inflate(m.LongSide()*0.15))
		}
	}
	return out
}
