package flow

import (
	"testing"

	"mvs/internal/geom"
	"mvs/internal/vision"
)

var frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 1280, MaxY: 704}

func det(id int, x, y, w, h float64) vision.Detection {
	return vision.Detection{
		Box:     geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h},
		Score:   0.9,
		TruthID: id,
	}
}

func newTracker(t *testing.T) *Tracker {
	t.Helper()
	tr, err := NewTracker(frame, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTrackerRejectsEmptyFrame(t *testing.T) {
	if _, err := NewTracker(geom.Rect{}, Config{}); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestUpdateCreatesTracks(t *testing.T) {
	tr := newTracker(t)
	created, err := tr.Update([]vision.Detection{det(1, 100, 100, 50, 40), det(2, 500, 300, 60, 45)})
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 2 || tr.Len() != 2 {
		t.Fatalf("created %v, len %d", created, tr.Len())
	}
	tracks := tr.Tracks()
	if tracks[0].TruthID != 1 || tracks[1].TruthID != 2 {
		t.Fatalf("truth ids = %d, %d", tracks[0].TruthID, tracks[1].TruthID)
	}
	if tracks[0].QuantSize != 64 {
		t.Fatalf("quant size = %d", tracks[0].QuantSize)
	}
}

func TestUpdateAssociatesMovedDetection(t *testing.T) {
	tr := newTracker(t)
	if _, err := tr.Update([]vision.Detection{det(7, 100, 100, 50, 40)}); err != nil {
		t.Fatal(err)
	}
	id := tr.Tracks()[0].ID
	// Object moved 10px right: should match the existing track, not
	// spawn a new one.
	created, err := tr.Update([]vision.Detection{det(7, 110, 100, 50, 40)})
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 0 || tr.Len() != 1 {
		t.Fatalf("created %v, len %d", created, tr.Len())
	}
	track := tr.Get(id)
	if track == nil {
		t.Fatal("track vanished")
	}
	if track.Velocity.X <= 0 {
		t.Fatalf("velocity = %v", track.Velocity)
	}
	if track.Age != 1 || track.Missed != 0 {
		t.Fatalf("age=%d missed=%d", track.Age, track.Missed)
	}
}

func TestVelocityPredictionConverges(t *testing.T) {
	tr := newTracker(t)
	// Constant motion of 8 px/frame.
	for i := 0; i < 10; i++ {
		x := 100 + float64(i)*8
		if _, err := tr.Update([]vision.Detection{det(1, x, 100, 50, 40)}); err != nil {
			t.Fatal(err)
		}
	}
	track := tr.Tracks()[0]
	if track.Velocity.X < 7 || track.Velocity.X > 9 {
		t.Fatalf("velocity = %v, want ~8", track.Velocity)
	}
	// Prediction should land close to the next true position.
	pred := track.Predicted()
	wantX := 100 + 10.0*8
	if pred.MinX < wantX-3 || pred.MinX > wantX+3 {
		t.Fatalf("pred.MinX = %v, want ~%v", pred.MinX, wantX)
	}
}

func TestMissedTracksAreDropped(t *testing.T) {
	tr, err := NewTracker(frame, Config{MaxMissed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Update([]vision.Detection{det(1, 100, 100, 50, 40)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := tr.Update(nil); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 1 {
			t.Fatalf("track dropped too early at miss %d", i+1)
		}
	}
	if _, err := tr.Update(nil); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("track not dropped after MaxMissed")
	}
}

func TestCoastingTrackFollowsVelocity(t *testing.T) {
	tr := newTracker(t)
	for i := 0; i < 5; i++ {
		x := 100 + float64(i)*10
		if _, err := tr.Update([]vision.Detection{det(1, x, 100, 50, 40)}); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.Tracks()[0].Box
	if _, err := tr.Update(nil); err != nil {
		t.Fatal(err)
	}
	after := tr.Tracks()[0].Box
	if after.MinX <= before.MinX {
		t.Fatalf("coasting box did not advance: %v -> %v", before, after)
	}
	if tr.Tracks()[0].Missed != 1 {
		t.Fatalf("missed = %d", tr.Tracks()[0].Missed)
	}
}

func TestTwoObjectsCrossWithoutSwapConfusion(t *testing.T) {
	tr := newTracker(t)
	// Two objects far apart moving toward each other; with per-frame
	// updates the Hungarian match must keep them separate (no track
	// explosion).
	for i := 0; i < 20; i++ {
		a := det(1, 100+float64(i)*10, 100, 40, 40)
		b := det(2, 500-float64(i)*10, 100, 40, 40)
		if _, err := tr.Update([]vision.Detection{a, b}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 2 {
		t.Fatalf("tracks = %d, want 2", tr.Len())
	}
}

func TestSpawnAndRemove(t *testing.T) {
	tr := newTracker(t)
	id := tr.Spawn(det(9, 200, 200, 120, 90))
	if tr.Len() != 1 {
		t.Fatal("spawn failed")
	}
	track := tr.Get(id)
	if track.QuantSize != 128 { // long side 120 -> 128
		t.Fatalf("quant size = %d", track.QuantSize)
	}
	tr.Remove(id)
	if tr.Len() != 0 || tr.Get(id) != nil {
		t.Fatal("remove failed")
	}
}

func TestRefreshSizes(t *testing.T) {
	tr := newTracker(t)
	id := tr.Spawn(det(1, 100, 100, 50, 40)) // 64
	track := tr.Get(id)
	// Object grows well past 64 within the horizon; size must stay fixed
	// until refresh.
	track.Box = geom.Rect{MinX: 100, MinY: 100, MaxX: 300, MaxY: 250}
	if track.QuantSize != 64 {
		t.Fatalf("size changed mid-horizon: %d", track.QuantSize)
	}
	tr.RefreshSizes()
	if track.QuantSize != 256 {
		t.Fatalf("size after refresh = %d", track.QuantSize)
	}
}

func TestRegionGeometry(t *testing.T) {
	tr := newTracker(t)
	id := tr.Spawn(det(1, 100, 100, 50, 40))
	track := tr.Get(id)
	region := tr.Region(track)
	if region.W() != 64 || region.H() != 64 {
		t.Fatalf("region = %v", region)
	}
	if !frame.ContainsRect(region) {
		t.Fatalf("region %v escapes frame", region)
	}
	// Region centres on the *predicted* location.
	track.Velocity = geom.Point{X: 20, Y: 0}
	moved := tr.Region(track)
	if moved.Center().X <= region.Center().X {
		t.Fatalf("region ignored velocity: %v vs %v", moved.Center(), region.Center())
	}
}

func TestRegionClampedAtBorder(t *testing.T) {
	tr := newTracker(t)
	id := tr.Spawn(det(1, 0, 0, 30, 30))
	region := tr.Region(tr.Get(id))
	if !frame.ContainsRect(region) || region.W() != 64 || region.H() != 64 {
		t.Fatalf("border region = %v", region)
	}
}

func TestNewRegionsProposesUnexplainedMotion(t *testing.T) {
	moving := []geom.Rect{
		{MinX: 100, MinY: 100, MaxX: 150, MaxY: 140}, // tracked
		{MinX: 600, MinY: 300, MaxX: 660, MaxY: 350}, // new object
	}
	predicted := []geom.Rect{{MinX: 95, MinY: 98, MaxX: 148, MaxY: 139}}
	regions := NewRegions(moving, predicted, 0)
	if len(regions) != 1 {
		t.Fatalf("regions = %v", regions)
	}
	// Proposal covers and inflates the unexplained cluster.
	if !regions[0].ContainsRect(moving[1]) {
		t.Fatalf("region %v does not cover cluster %v", regions[0], moving[1])
	}
}

func TestNewRegionsAllExplained(t *testing.T) {
	moving := []geom.Rect{{MinX: 100, MinY: 100, MaxX: 150, MaxY: 140}}
	predicted := []geom.Rect{{MinX: 100, MinY: 100, MaxX: 150, MaxY: 140}}
	if regions := NewRegions(moving, predicted, 0); len(regions) != 0 {
		t.Fatalf("regions = %v", regions)
	}
}

func TestNewRegionsNoPredictions(t *testing.T) {
	moving := []geom.Rect{{MinX: 1, MinY: 1, MaxX: 10, MaxY: 10}}
	if regions := NewRegions(moving, nil, 0); len(regions) != 1 {
		t.Fatalf("regions = %v", regions)
	}
	if regions := NewRegions(nil, nil, 0); len(regions) != 0 {
		t.Fatalf("regions from no motion = %v", regions)
	}
}

func TestTrackIDsMonotonic(t *testing.T) {
	tr := newTracker(t)
	a := tr.Spawn(det(1, 10, 10, 20, 20))
	tr.Remove(a)
	b := tr.Spawn(det(2, 10, 10, 20, 20))
	if b <= a {
		t.Fatalf("IDs not monotonic: %d then %d", a, b)
	}
}

func BenchmarkTrackerUpdate20Tracks(b *testing.B) {
	tr, err := NewTracker(frame, Config{})
	if err != nil {
		b.Fatal(err)
	}
	dets := make([]vision.Detection, 20)
	for i := range dets {
		dets[i] = det(i+1, float64(50+i*60), 100, 50, 40)
	}
	if _, err := tr.Update(dets); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Update(dets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewRegions(b *testing.B) {
	var moving, predicted []geom.Rect
	for i := 0; i < 30; i++ {
		moving = append(moving, geom.Rect{
			MinX: float64(i * 40), MinY: 100, MaxX: float64(i*40 + 35), MaxY: 140,
		})
		if i%2 == 0 {
			predicted = append(predicted, moving[i])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewRegions(moving, predicted, 0)
	}
}
