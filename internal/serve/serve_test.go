package serve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"mvs/internal/gpu"
	"mvs/internal/metrics"
	"mvs/internal/pipeline"
	"mvs/internal/profile"
	"mvs/internal/scene"
	"mvs/internal/workload"
)

// testTrace generates the shared S1 trace once; it is read-only and
// safe to share across tenant engines.
var (
	traceOnce sync.Once
	traceVal  *scene.Trace
	traceErr  error
)

func testTrace(t testing.TB) *scene.Trace {
	t.Helper()
	traceOnce.Do(func() {
		s, err := workload.ByName("S1", 11)
		if err != nil {
			traceErr = err
			return
		}
		traceVal, traceErr = s.World.Run(120)
	})
	if traceErr != nil {
		t.Fatalf("trace: %v", traceErr)
	}
	return traceVal
}

func testProfiles(t testing.TB) []*profile.Profile {
	t.Helper()
	s, err := workload.ByName("S1", 11)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	return s.Profiles()
}

// captureSink records every snapshot for comparison.
type captureSink struct {
	mu    sync.Mutex
	snaps []metrics.Snapshot
}

func (c *captureSink) RecordFrame(s metrics.Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps = append(c.snaps, s)
}
func (c *captureSink) Flush() error { return nil }

// TestLocalPassthroughBitIdentical is the serving layer's determinism
// anchor: an engine whose GPU pricing is deferred through a NewLocal
// executor must produce a bit-identical modelled report and snapshot
// stream to the same engine pricing work inline on private executors —
// proving the deferred-pricing refactor changed nothing observable.
func TestLocalPassthroughBitIdentical(t *testing.T) {
	trace := testTrace(t)

	run := func(remote bool, workers int) (*pipeline.Report, []metrics.Snapshot) {
		t.Helper()
		sink := &captureSink{}
		cfg := pipeline.NewConfig(pipeline.Independent, 11)
		cfg.Sched.Workers = workers
		cfg.Obs.Sink = sink
		cfg.Obs.Label = "anchor"
		if remote {
			local, err := NewLocal(testProfiles(t))
			if err != nil {
				t.Fatalf("NewLocal: %v", err)
			}
			cfg.Serve.Executor = local
		}
		rep, err := pipeline.Run(trace, testProfiles(t), nil, cfg)
		if err != nil {
			t.Fatalf("run(remote=%v): %v", remote, err)
		}
		m := rep.Modeled()
		return &m, sink.snaps
	}

	wantRep, wantSnaps := run(false, 1)
	for _, workers := range []int{1, 4} {
		gotRep, gotSnaps := run(true, workers)
		if !reflect.DeepEqual(gotRep, wantRep) {
			t.Errorf("workers=%d: modelled report differs:\n got %+v\nwant %+v", workers, gotRep, wantRep)
		}
		if !reflect.DeepEqual(gotSnaps, wantSnaps) {
			t.Errorf("workers=%d: snapshot stream differs", workers)
		}
	}
}

// tenantSpecs builds n Independent-mode tenants over the shared trace,
// each with its own detector seed.
func tenantSpecs(t testing.TB, n, workers int) []TenantSpec {
	t.Helper()
	trace := testTrace(t)
	specs := make([]TenantSpec, n)
	for i := range specs {
		cfg := pipeline.NewConfig(pipeline.Independent, 11+int64(i)*31)
		cfg.Sched.Workers = workers
		specs[i] = TenantSpec{
			ID:       fmt.Sprintf("tenant%d", i),
			Source:   pipeline.NewTraceSource(trace),
			Profiles: testProfiles(t),
			Config:   cfg,
		}
	}
	return specs
}

func poolConfig(t testing.TB, executors int, consolidate bool) Config {
	t.Helper()
	return Config{
		Executors:   executors,
		Profile:     profile.Derived(profile.JetsonXavier),
		Consolidate: consolidate,
		DefaultSLO:  150 * time.Millisecond,
	}
}

// TestPoolDeterminism runs the same four-tenant consolidated workload
// twice — and once with a different per-engine worker count — and
// requires identical modelled reports: pricing is a pure function of
// registration order and submissions, never of goroutine timing.
func TestPoolDeterminism(t *testing.T) {
	run := func(workers int) []TenantResult {
		t.Helper()
		pool, err := NewPool(poolConfig(t, 2, true))
		if err != nil {
			t.Fatalf("NewPool: %v", err)
		}
		results, err := Run(pool, tenantSpecs(t, 4, workers))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return results
	}
	want := run(1)
	for _, workers := range []int{1, 4} {
		got := run(workers)
		for i := range want {
			gm, wm := got[i].Report.Modeled(), want[i].Report.Modeled()
			if !reflect.DeepEqual(&gm, &wm) {
				t.Errorf("workers=%d tenant %s: report differs:\n got %+v\nwant %+v",
					workers, want[i].ID, gm, wm)
			}
		}
	}
}

// TestConsolidationSharesBatches checks the tentpole effect: with
// consolidation on, cross-tenant shared batches exist and mean batch
// occupancy is at least the dedicated baseline's, at identical
// aggregate capacity and workload.
func TestConsolidationSharesBatches(t *testing.T) {
	arm := func(consolidate bool) PoolStats {
		t.Helper()
		pool, err := NewPool(poolConfig(t, 2, consolidate))
		if err != nil {
			t.Fatalf("NewPool: %v", err)
		}
		if _, err := Run(pool, tenantSpecs(t, 4, 0)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return pool.Stats()
	}
	con, ded := arm(true), arm(false)
	if con.SharedBatches == 0 {
		t.Errorf("consolidated run shared no batches: %+v", con)
	}
	if ded.SharedBatches != 0 {
		t.Errorf("dedicated run shared %d batches, want 0", ded.SharedBatches)
	}
	if con.Batches >= ded.Batches {
		t.Errorf("consolidation did not reduce batch count: %d vs %d", con.Batches, ded.Batches)
	}
	if con.MeanOccupancy < ded.MeanOccupancy {
		t.Errorf("consolidated occupancy %.3f below dedicated %.3f", con.MeanOccupancy, ded.MeanOccupancy)
	}
	// Admission control reacts to the arms' different latencies, so the
	// inspected volumes need not match exactly — but consolidation must
	// never shed more than the dedicated baseline does.
	if con.Images < ded.Images {
		t.Errorf("consolidated arm inspected less: %d vs %d images", con.Images, ded.Images)
	}
}

// TestFairnessNoStarvation drives the pool directly with a heavy tenant
// (64 partial tasks per epoch) and a light tenant (4 tasks) sharing one
// oversubscribed executor: weighted fair queueing must keep the light
// tenant inside its SLO on every epoch while admission control sheds
// the heavy tenant's load.
func TestFairnessNoStarvation(t *testing.T) {
	const (
		epochs    = 40
		slo       = 30 * time.Millisecond
		heavyLoad = 64
		lightLoad = 4
	)
	run := func() (light, heavy []time.Duration, lightStats, heavyStats pipeline.ExecStats) {
		t.Helper()
		pool, err := NewPool(Config{
			Executors:   1,
			Profile:     profile.Derived(profile.JetsonXavier),
			Consolidate: true,
			DefaultSLO:  slo,
		})
		if err != nil {
			t.Fatalf("NewPool: %v", err)
		}
		lt, err := pool.Register("light", 1, 0)
		if err != nil {
			t.Fatalf("register light: %v", err)
		}
		ht, err := pool.Register("heavy", 1, 0)
		if err != nil {
			t.Fatalf("register heavy: %v", err)
		}
		drive := func(h *Tenant, tasks int, lats *[]time.Duration, stats *pipeline.ExecStats) error {
			defer h.Finish()
			for e := 0; e < epochs; e++ {
				reqs := []pipeline.ExecRequest{{Cam: 0, Tasks: make([]gpu.Task, tasks)}}
				for i := range reqs[0].Tasks {
					reqs[0].Tasks[i] = gpu.Task{ObjectID: i, Size: 128}
				}
				res, st, err := h.SubmitFrame(e, reqs)
				if err != nil {
					return err
				}
				*lats = append(*lats, res[0].Latency)
				*stats = st
			}
			return nil
		}
		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); errs[0] = drive(lt, lightLoad, &light, &lightStats) }()
		go func() { defer wg.Done(); errs[1] = drive(ht, heavyLoad, &heavy, &heavyStats) }()
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatalf("drive: %v", err)
			}
		}
		return light, heavy, lightStats, heavyStats
	}

	light, heavy, lightStats, heavyStats := run()
	for e, lat := range light {
		if lat > slo {
			t.Errorf("epoch %d: light tenant latency %v exceeds SLO %v", e, lat, slo)
		}
	}
	if lightStats.SLOViolations != 0 {
		t.Errorf("light tenant charged %d SLO violations, want 0", lightStats.SLOViolations)
	}
	if heavyStats.SLOViolations == 0 {
		t.Errorf("heavy tenant never violated its SLO despite %d tasks/epoch", heavyLoad)
	}
	if heavyStats.ShedTasks == 0 {
		t.Errorf("admission control never shed the heavy tenant")
	}
	if lightStats.ShedTasks != 0 {
		t.Errorf("light tenant was shed %d tasks while inside SLO", lightStats.ShedTasks)
	}
	for e := range heavy {
		if e > 0 && light[e] > heavy[e] {
			t.Errorf("epoch %d: light tenant (%v) served after heavy (%v)", e, light[e], heavy[e])
		}
	}

	// Deterministic across runs: goroutine interleaving at the barrier
	// must not change pricing.
	light2, heavy2, _, _ := run()
	if !reflect.DeepEqual(light, light2) || !reflect.DeepEqual(heavy, heavy2) {
		t.Errorf("per-epoch latencies differ across identical runs")
	}
}

// TestPoolLifecycleErrors pins the misuse contract: registering after
// serving starts fails, submitting after Finish fails, and a tenant
// finishing early releases the epoch barrier for the rest.
func TestPoolLifecycleErrors(t *testing.T) {
	pool, err := NewPool(poolConfig(t, 1, true))
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	a, err := pool.Register("a", 1, 0)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	b, err := pool.Register("b", 1, 0)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := pool.Register("a", 1, 0); err == nil {
		t.Error("duplicate id registered")
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := a.SubmitFrame(0, []pipeline.ExecRequest{{Cam: 0}})
		done <- err
	}()
	// b never submits; finishing it must complete a's epoch.
	time.Sleep(10 * time.Millisecond)
	if _, err := pool.Register("c", 1, 0); err == nil {
		t.Error("registration allowed after serving started")
	}
	b.Finish()
	if err := <-done; err != nil {
		t.Fatalf("a's epoch errored after b finished: %v", err)
	}
	b.Finish() // idempotent
	if _, _, err := b.SubmitFrame(1, nil); err == nil {
		t.Error("submit after Finish succeeded")
	}
	a.Finish()
}
