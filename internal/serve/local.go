package serve

import (
	"fmt"
	"sync"

	"mvs/internal/gpu"
	"mvs/internal/pipeline"
	"mvs/internal/profile"
)

// Local is a single-tenant passthrough executor: one private
// gpu.Executor per camera, priced synchronously, no pool, no barrier.
// An engine wired to a Local produces bit-identical modelled output to
// the same engine pricing work on its own executors — the anchor of the
// serving layer's determinism contract (tested in this package) and a
// convenient stub wherever a pipeline.TenantExecutor is required but
// consolidation is not wanted.
type Local struct {
	mu    sync.Mutex
	execs []*gpu.Executor
}

// NewLocal builds a passthrough over one executor per camera profile.
func NewLocal(profiles []*profile.Profile) (*Local, error) {
	execs := make([]*gpu.Executor, len(profiles))
	for i, prof := range profiles {
		ex, err := gpu.NewExecutor(prof)
		if err != nil {
			return nil, fmt.Errorf("serve: camera %d: %w", i, err)
		}
		execs[i] = ex
	}
	return &Local{execs: execs}, nil
}

// SubmitFrame implements pipeline.TenantExecutor by running each
// request on the camera's private executor, exactly as the engine's
// local path would have.
func (l *Local) SubmitFrame(frame int, reqs []pipeline.ExecRequest) ([]pipeline.ExecResult, pipeline.ExecStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]pipeline.ExecResult, len(reqs))
	for i, r := range reqs {
		if r.Cam < 0 || r.Cam >= len(l.execs) {
			return nil, pipeline.ExecStats{}, fmt.Errorf("serve: request for camera %d, have %d", r.Cam, len(l.execs))
		}
		ex := l.execs[r.Cam]
		if r.Full {
			out[i].Latency = ex.RunFullFrame()
			continue
		}
		res, err := ex.RunFrame(r.Tasks)
		if err != nil {
			return nil, pipeline.ExecStats{}, fmt.Errorf("serve: camera %d: %w", r.Cam, err)
		}
		out[i] = pipeline.ExecResult{
			Latency:   res.Latency,
			Batches:   len(res.Batches),
			Images:    res.Images,
			Occupancy: gpu.BatchOccupancy(res.Batches, ex.Profile()),
		}
	}
	return out, pipeline.ExecStats{}, nil
}
