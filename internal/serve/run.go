package serve

import (
	"fmt"
	"sync"
	"time"

	"mvs/internal/assoc"
	"mvs/internal/pipeline"
	"mvs/internal/profile"
)

// TenantSpec describes one tenant for Run: its identity and SLO at the
// pool, plus the inputs of its private pipeline engine. Config.Serve
// and Config.Obs.Label are filled by Run (Serve from the registration,
// Label from the ID when unset); everything else is the tenant's own.
type TenantSpec struct {
	// ID names the tenant (metrics label, pool registration).
	ID string
	// Weight scales the tenant's fair share (<= 0 means 1).
	Weight float64
	// SLO is the tenant's latency objective (0 uses the pool default).
	SLO time.Duration
	// Source, Profiles, Model and Config build the tenant's engine,
	// exactly as pipeline.NewEngine takes them.
	Source   pipeline.Source
	Profiles []*profile.Profile
	Model    *assoc.Model
	Config   pipeline.Config
}

// TenantResult is one tenant's outcome from Run.
type TenantResult struct {
	// ID echoes the spec.
	ID string
	// Report is the tenant engine's final report; nil when the engine
	// failed before processing any frame.
	Report *pipeline.Report
	// Err is the tenant's terminal error, nil on a clean end of stream.
	Err error
}

// Run drives one engine per tenant against a shared pool: it registers
// every tenant (in spec order — registration order is part of the
// determinism contract), builds the engines, then runs each on its own
// goroutine with Finish deferred so an erroring or short stream never
// deadlocks its peers at the epoch barrier. It returns one result per
// spec, in order, and the first tenant error (results carry the rest).
func Run(pool *Pool, specs []TenantSpec) ([]TenantResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: no tenants")
	}
	handles := make([]*Tenant, len(specs))
	engines := make([]*pipeline.Engine, len(specs))
	for i, spec := range specs {
		h, err := pool.Register(spec.ID, spec.Weight, spec.SLO)
		if err == nil {
			cfg := spec.Config
			cfg.Serve = pipeline.Serve{Tenant: spec.ID, Executor: h}
			if cfg.Obs.Label == "" {
				cfg.Obs.Label = spec.ID
			}
			engines[i], err = pipeline.NewEngine(spec.Source, spec.Profiles, spec.Model, cfg)
		}
		if err != nil {
			// Unblock any tenants already registered before failing.
			for _, h := range handles[:i] {
				h.Finish()
			}
			return nil, fmt.Errorf("serve: tenant %q: %w", spec.ID, err)
		}
		handles[i] = h
	}

	// One goroutine per tenant, unconditionally: the epoch barrier
	// completes only when every active tenant has submitted, so bounding
	// these with a worker pool smaller than the tenant count would
	// deadlock the first epoch.
	results := make([]TenantResult, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer handles[i].Finish()
			err := engines[i].Run()
			var rep *pipeline.Report
			if engines[i].Frames() > 0 {
				var rerr error
				rep, rerr = engines[i].Report()
				if rerr != nil && err == nil {
					err = rerr
				}
			}
			results[i] = TenantResult{ID: specs[i].ID, Report: rep, Err: err}
		}(i)
	}
	wg.Wait()
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("serve: tenant %q: %w", results[i].ID, results[i].Err)
		}
	}
	return results, nil
}
