// Package serve is the multi-tenant consolidated serving layer: M
// independent pipeline engines — one per monitored region ("tenant") —
// share a pool of modeled GPU executors instead of each owning
// per-camera devices. Tenants submit one frame of inspection work per
// epoch through the pipeline.TenantExecutor seam; the pool prices each
// epoch deterministically once every active tenant has submitted:
//
//  1. admission control walks a per-tenant shed ladder (drop 0, ¼, ½ or
//     ¾ of partial tasks, by task index) driven by the previous epoch's
//     priced latency against the tenant's SLO — full-frame inspections
//     are never shed, so recall anchoring survives overload;
//  2. weighted fair queueing orders tenants by accumulated virtual
//     service (busy time over weight), so a light tenant's few tasks
//     are packed and placed ahead of a heavy tenant's backlog;
//  3. batch consolidation packs same-size tasks from *different*
//     tenants into shared batches (gpu.Packer) up to the device's knee
//     batch limit — the Object-Level-Consolidation effect: a batch of n
//     costs base·(1+slope·(n−1)), far less than n singleton launches —
//     while Consolidate=false seals batches at tenant boundaries, the
//     dedicated-slice baseline at identical aggregate capacity;
//  4. placement puts each batch on the executor with the earliest
//     availability; executor backlog carries across epochs, so
//     oversubscription surfaces as queueing delay in the priced
//     latencies, which feed each tenant's own adapt.Controller — the
//     tenants degrade independently under shared-GPU pressure.
//
// Determinism contract (docs/SERVING.md): the priced results are a pure
// function of (pool Config, tenant registration order, and each
// tenant's per-epoch submissions). Goroutine arrival order at the epoch
// barrier never influences pricing — submissions are keyed by tenant
// and the epoch is priced only when the active set is complete — so a
// multi-tenant run is reproducible at every worker count, and a single
// tenant on a NewLocal passthrough is bit-identical to an engine
// running on private executors.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mvs/internal/gpu"
	"mvs/internal/pipeline"
	"mvs/internal/profile"
)

// DefaultPeriod is the epoch length — the modeled frame period shared
// by every tenant — when Config.Period is zero. It matches the 10 fps
// frame cadence the experiments harness models.
const DefaultPeriod = 100 * time.Millisecond

// Config shapes a Pool. Profile is required; zero values elsewhere
// select the documented defaults.
type Config struct {
	// Executors is the number of identical GPU executors in the pool
	// (default 1). Aggregate capacity is Executors × Period of busy time
	// per epoch.
	Executors int
	// Profile is the shared device profile all executors run; batch
	// limits and the latency knee come from it (profile.Derived).
	Profile *profile.Profile
	// Period is the epoch length (default DefaultPeriod). Every active
	// tenant submits exactly one frame per epoch; epoch k starts at
	// virtual time k·Period.
	Period time.Duration
	// Consolidate packs same-size tasks from different tenants into
	// shared batches. False is the dedicated-slice baseline: identical
	// scheduling, but batches seal at tenant boundaries.
	Consolidate bool
	// DefaultSLO is the per-tenant latency objective used when Register
	// is called with slo == 0. A tenant whose resolved SLO is 0 is never
	// shed and never counts violations.
	DefaultSLO time.Duration
	// MaxShedLevel caps the admission ladder depth, 1..3 (default 3 =
	// shed up to ¾ of partial tasks).
	MaxShedLevel int
}

// PoolStats aggregates pool-wide counters across all epochs priced so
// far.
type PoolStats struct {
	// Epochs is the number of epochs priced.
	Epochs int
	// Batches and FullFrames count partial-task batches and full-frame
	// inspections executed; Images counts partial tasks inspected.
	Batches    int
	FullFrames int
	Images     int
	// SharedBatches counts batches containing tasks from ≥ 2 tenants.
	SharedBatches int
	// ShedTasks counts partial tasks dropped by admission control.
	ShedTasks int
	// SLOViolations counts (tenant, epoch) pairs priced over SLO.
	SLOViolations int
	// BusyTime is the summed execution latency across all executors.
	BusyTime time.Duration
	// MeanOccupancy is the mean fill fraction of partial-task batches.
	MeanOccupancy float64
}

// Pool is the shared executor scheduler. Build with NewPool, Register
// every tenant before the first SubmitFrame, then run each tenant's
// engine on its own goroutine (the epoch barrier needs all active
// tenants concurrently runnable — never bound them with a worker pool
// smaller than the tenant count). Pool is safe for concurrent use by
// its tenants.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	cfg     Config
	tenants []*Tenant
	started bool
	epoch   int
	avail   []time.Duration // per-executor virtual availability
	stats   PoolStats
	occSum  float64
}

// NewPool validates the config and builds an empty pool.
func NewPool(cfg Config) (*Pool, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("serve: nil profile")
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.Period <= 0 {
		cfg.Period = DefaultPeriod
	}
	if cfg.MaxShedLevel <= 0 || cfg.MaxShedLevel > 3 {
		cfg.MaxShedLevel = 3
	}
	p := &Pool{cfg: cfg, avail: make([]time.Duration, cfg.Executors)}
	p.cond = sync.NewCond(&p.mu)
	return p, nil
}

// Register adds a tenant to the pool and returns its executor handle
// (a pipeline.TenantExecutor for Config.Serve.Executor). weight scales
// the tenant's fair share (<= 0 means 1); slo is its latency objective
// (0 falls back to Config.DefaultSLO). Registration order is part of
// the determinism contract, and all tenants must register before the
// first SubmitFrame.
func (p *Pool) Register(id string, weight float64, slo time.Duration) (*Tenant, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return nil, fmt.Errorf("serve: register %q after serving started", id)
	}
	if id == "" {
		return nil, fmt.Errorf("serve: empty tenant id")
	}
	for _, t := range p.tenants {
		if t.id == id {
			return nil, fmt.Errorf("serve: duplicate tenant id %q", id)
		}
	}
	if weight <= 0 {
		weight = 1
	}
	if slo == 0 {
		slo = p.cfg.DefaultSLO
	}
	t := &Tenant{pool: p, id: id, index: len(p.tenants), weight: weight, slo: slo}
	p.tenants = append(p.tenants, t)
	return t, nil
}

// Stats returns a copy of the pool-wide counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	if s.Batches > 0 {
		s.MeanOccupancy = p.occSum / float64(s.Batches)
	}
	return s
}

// Tenant is one registered tenant's handle into the pool. It
// implements pipeline.TenantExecutor; wire it through
// pipeline.Config.Serve.Executor and call Finish when the tenant's
// stream ends (serve.Run does both).
type Tenant struct {
	pool   *Pool
	id     string
	index  int
	weight float64
	slo    time.Duration

	// Scheduling state, guarded by pool.mu.
	vtime       float64 // accumulated virtual service: busy seconds / weight
	shedLevel   int
	lastLatency time.Duration
	stats       pipeline.ExecStats

	// Epoch exchange, guarded by pool.mu.
	pending    []pipeline.ExecRequest
	hasPending bool
	finished   bool
	reply      []pipeline.ExecResult
	replyStats pipeline.ExecStats
	replyErr   error
	replyReady bool
}

// ID returns the tenant's registered identity.
func (t *Tenant) ID() string { return t.id }

// Stats returns the tenant's cumulative executor counters.
func (t *Tenant) Stats() pipeline.ExecStats {
	t.pool.mu.Lock()
	defer t.pool.mu.Unlock()
	return t.stats
}

// ShedLevel returns the admission ladder rung currently applied to the
// tenant's partial tasks.
func (t *Tenant) ShedLevel() int {
	t.pool.mu.Lock()
	defer t.pool.mu.Unlock()
	return t.shedLevel
}

// SubmitFrame implements pipeline.TenantExecutor: it files the
// tenant's frame into the current epoch and blocks until every active
// tenant has submitted and the epoch is priced. The returned results
// parallel reqs; stats restates the tenant's cumulative counters.
func (t *Tenant) SubmitFrame(frame int, reqs []pipeline.ExecRequest) ([]pipeline.ExecResult, pipeline.ExecStats, error) {
	p := t.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if t.finished {
		return nil, pipeline.ExecStats{}, fmt.Errorf("serve: tenant %q: submit after Finish", t.id)
	}
	if t.hasPending || t.replyReady {
		return nil, pipeline.ExecStats{}, fmt.Errorf("serve: tenant %q: concurrent SubmitFrame", t.id)
	}
	p.started = true
	t.pending = reqs
	t.hasPending = true
	if p.allSubmitted() {
		p.priceEpoch()
	}
	for !t.replyReady {
		p.cond.Wait()
	}
	reply, stats, err := t.reply, t.replyStats, t.replyErr
	t.reply, t.replyErr, t.replyReady = nil, nil, false
	return reply, stats, err
}

// Finish marks the tenant's stream as ended: it leaves the active set,
// and an epoch waiting only on it is priced immediately. Finish is
// idempotent and must be called (serve.Run defers it) — a tenant that
// exits without finishing deadlocks its peers at the epoch barrier.
func (t *Tenant) Finish() {
	p := t.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if t.finished {
		return
	}
	t.finished = true
	t.hasPending = false
	t.pending = nil
	if p.allSubmitted() {
		p.priceEpoch()
	}
}

// allSubmitted reports whether at least one tenant is active and every
// active tenant has a pending submission. Caller holds p.mu.
func (p *Pool) allSubmitted() bool {
	any := false
	for _, t := range p.tenants {
		if t.finished {
			continue
		}
		if !t.hasPending {
			return false
		}
		any = true
	}
	return any
}

// member identifies one unit of priced work: request ri of tenant t
// (for partial batches, one entry per admitted task).
type member struct {
	t  *Tenant
	ri int
}

// pricedBatch is one GPU launch scheduled within an epoch: either a
// full-frame inspection (size 0, a single member) or a partial-task
// batch.
type pricedBatch struct {
	size     int // 0 marks a full-frame inspection
	dur      time.Duration
	complete time.Duration // absolute virtual completion time
	members  []member
}

// priceEpoch prices the current epoch: admission, fair-queue ordering,
// batch packing, executor placement, and result attribution, entirely
// from registration order and the pending submissions. Caller holds
// p.mu; replies are published and the barrier broadcast before return.
func (p *Pool) priceEpoch() {
	prof := p.cfg.Profile
	epochStart := time.Duration(p.epoch) * p.cfg.Period

	active := make([]*Tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		if !t.finished && t.hasPending {
			active = append(active, t)
		}
	}

	// Admission ladder: react to the previous epoch's priced latency.
	// The recovery edge sits at 70% of the SLO (hysteresis, mirroring
	// adapt.Policy.LowerFrac) so the ladder doesn't flap.
	for _, t := range active {
		if t.slo <= 0 {
			continue
		}
		if t.lastLatency > t.slo && t.shedLevel < p.cfg.MaxShedLevel {
			t.shedLevel++
		} else if t.shedLevel > 0 && t.lastLatency*10 <= t.slo*7 {
			t.shedLevel--
		}
	}

	// Weighted fair queueing: serve tenants in ascending accumulated
	// virtual service, ties by registration order.
	order := append([]*Tenant(nil), active...)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].vtime != order[j].vtime {
			return order[i].vtime < order[j].vtime
		}
		return order[i].index < order[j].index
	})

	// Pack: full frames are unsharable single launches; partial tasks
	// flow through a gpu.Packer — one shared across tenants when
	// consolidating, one per tenant otherwise — with ObjectID indexing
	// the member list so sealed batches map back to (tenant, request).
	var (
		batches    []pricedBatch
		memberList []member
		packErr    error
	)
	seal := func(b gpu.Batch) {
		pb := pricedBatch{
			size:    b.Size,
			dur:     profile.TrueBatchLatency(prof.Class, b.Size, len(b.Tasks)),
			members: make([]member, len(b.Tasks)),
		}
		for i, task := range b.Tasks {
			pb.members[i] = memberList[task.ObjectID]
		}
		batches = append(batches, pb)
	}
	var shared *gpu.Packer
	if p.cfg.Consolidate {
		shared, _ = gpu.NewPacker(prof) // profile validated in NewPool
	}
	for _, t := range order {
		t.reply = make([]pipeline.ExecResult, len(t.pending))
		pk := shared
		if pk == nil {
			pk, _ = gpu.NewPacker(prof)
		}
		for ri, req := range t.pending {
			if req.Full {
				batches = append(batches, pricedBatch{
					dur:     profile.TrueFullFrameLatency(prof.Class),
					members: []member{{t, ri}},
				})
				continue
			}
			for ti, task := range req.Tasks {
				// Deterministic shed rule: level L drops tasks whose
				// index falls in the first L of every 4 slots.
				if t.shedLevel > 0 && ti%4 < t.shedLevel {
					t.reply[ri].Shed++
					t.stats.ShedTasks++
					p.stats.ShedTasks++
					continue
				}
				idx := len(memberList)
				memberList = append(memberList, member{t, ri})
				sealed, full, err := pk.Add(gpu.Task{ObjectID: idx, Size: task.Size})
				if err != nil && packErr == nil {
					packErr = fmt.Errorf("serve: tenant %q camera %d: %w", t.id, req.Cam, err)
				}
				if full {
					seal(sealed)
				}
			}
		}
		if pk != shared {
			for _, b := range pk.Flush() {
				seal(b)
			}
		}
	}
	if shared != nil {
		for _, b := range shared.Flush() {
			seal(b)
		}
	}
	if packErr != nil {
		for _, t := range active {
			t.replyErr = packErr
			t.hasPending = false
			t.pending = nil
			t.replyReady = true
		}
		p.epoch++
		p.cond.Broadcast()
		return
	}

	// Place every batch on the executor with the earliest availability
	// (ties to the lowest index). Backlog carries across epochs: a batch
	// starts no earlier than the epoch itself, but a busy executor
	// pushes it — and the tenant latencies it feeds — later.
	for bi := range batches {
		b := &batches[bi]
		e := 0
		for k := 1; k < len(p.avail); k++ {
			if p.avail[k] < p.avail[e] {
				e = k
			}
		}
		start := p.avail[e]
		if start < epochStart {
			start = epochStart
		}
		b.complete = start + b.dur
		p.avail[e] = b.complete
		p.stats.BusyTime += b.dur
	}

	// Attribute each batch to the requests it served. Per-request
	// occupancy temporarily accumulates the fill-fraction sum; it is
	// normalized by the batch count below.
	for _, b := range batches {
		rel := b.complete - epochStart
		if b.size == 0 {
			m := b.members[0]
			r := &m.t.reply[m.ri]
			if rel > r.Latency {
				r.Latency = rel
			}
			m.t.vtime += b.dur.Seconds() / m.t.weight
			p.stats.FullFrames++
			continue
		}
		limit, err := prof.BatchLimitFor(b.size)
		if err != nil || limit <= 0 {
			continue // unreachable: the packer validated the size
		}
		fill := float64(len(b.members)) / float64(limit)
		p.stats.Batches++
		p.stats.Images += len(b.members)
		p.occSum += fill
		perReq := make(map[member]int, len(b.members))
		perTenant := make(map[*Tenant]int, 2)
		for _, m := range b.members {
			perReq[m]++
			perTenant[m.t]++
		}
		for m, n := range perReq {
			r := &m.t.reply[m.ri]
			if rel > r.Latency {
				r.Latency = rel
			}
			r.Batches++
			r.Images += n
			r.Occupancy += fill
		}
		for t, n := range perTenant {
			t.vtime += b.dur.Seconds() * float64(n) / float64(len(b.members)) / t.weight
			if len(perTenant) >= 2 {
				t.stats.SharedBatches++
			}
		}
		if len(perTenant) >= 2 {
			p.stats.SharedBatches++
		}
	}

	// Queue depth: launches still executing past the end of this epoch.
	queue := 0
	for _, b := range batches {
		if b.complete > epochStart+p.cfg.Period {
			queue++
		}
	}

	// Publish replies: per-tenant epoch latency (slowest camera), SLO
	// accounting, occupancy normalization, and the cumulative counters.
	p.stats.Epochs++
	for _, t := range active {
		var lat time.Duration
		for ri := range t.reply {
			r := &t.reply[ri]
			if r.Batches > 0 {
				r.Occupancy /= float64(r.Batches)
			}
			if r.Latency > lat {
				lat = r.Latency
			}
		}
		t.lastLatency = lat
		if t.slo > 0 && lat > t.slo {
			t.stats.SLOViolations++
			p.stats.SLOViolations++
		}
		t.stats.QueueDepth = queue
		t.replyStats = t.stats
		t.hasPending = false
		t.pending = nil
		t.replyReady = true
	}
	p.epoch++
	p.cond.Broadcast()
}
