package serve

import (
	"fmt"
	"testing"
)

// BenchmarkTenantServe measures one consolidated multi-tenant run over
// the shared S1 trace as the tenant count scales — the serving layer's
// scheduling overhead per tenant-frame, not GPU time (latencies are
// modeled). CI runs one iteration of each point as a build/run smoke.
func BenchmarkTenantServe(b *testing.B) {
	for _, tenants := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			trace := testTrace(b)
			for i := 0; i < b.N; i++ {
				pool, err := NewPool(poolConfig(b, 4, true))
				if err != nil {
					b.Fatalf("NewPool: %v", err)
				}
				results, err := Run(pool, tenantSpecs(b, tenants, 1))
				if err != nil {
					b.Fatalf("Run: %v", err)
				}
				if results[0].Report.Frames != len(trace.Frames) {
					b.Fatalf("short run: %d frames", results[0].Report.Frames)
				}
			}
			b.ReportMetric(float64(len(trace.Frames)*tenants)/float64(b.Elapsed().Seconds()*float64(b.N)), "tenant-frames/s")
		})
	}
}
