package serve

import (
	"reflect"
	"testing"
	"time"

	"mvs/internal/camfault"
	"mvs/internal/pipeline"
	"mvs/internal/profile"
	"mvs/internal/workload"
)

// TestChaosTenantOutage runs three tenants against one consolidated
// pool with the middle tenant's cameras under a seeded camfault outage
// schedule (plus health-tracked failover), under `go test -race` in CI:
// the faulty tenant's dead cameras must never wedge the epoch barrier
// or leak work into its neighbours, and the whole multi-tenant run must
// stay deterministic.
func TestChaosTenantOutage(t *testing.T) {
	trace := testTrace(t)

	specs := func() []TenantSpec {
		t.Helper()
		out := tenantSpecs(t, 3, 2)
		faults, err := camfault.Generate(camfault.Config{
			Seed: 17, Rate: 0.15, MeanOutage: 12, BootDelay: 2,
		}, len(trace.Cameras), len(trace.Frames))
		if err != nil {
			t.Fatalf("camfault: %v", err)
		}
		out[1].Config.Fault = pipeline.Fault{CamFaults: faults, HealthK: 3}
		return out
	}

	run := func() []TenantResult {
		t.Helper()
		pool, err := NewPool(Config{
			Executors:   2,
			Profile:     profile.Derived(profile.JetsonXavier),
			Consolidate: true,
			DefaultSLO:  150 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewPool: %v", err)
		}
		results, err := Run(pool, specs())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return results
	}

	results := run()
	for _, r := range results {
		if r.Report == nil {
			t.Fatalf("tenant %s: nil report", r.ID)
		}
		if r.Report.Frames != len(trace.Frames) {
			t.Errorf("tenant %s processed %d frames, want %d", r.ID, r.Report.Frames, len(trace.Frames))
		}
		if r.Report.Recall <= 0 {
			t.Errorf("tenant %s: recall %v", r.ID, r.Report.Recall)
		}
	}
	if results[1].Report.OutageFrames == 0 {
		t.Error("faulty tenant recorded no outage frames")
	}
	for _, i := range []int{0, 2} {
		if results[i].Report.OutageFrames != 0 {
			t.Errorf("healthy tenant %s recorded %d outage frames", results[i].ID, results[i].Report.OutageFrames)
		}
	}

	again := run()
	for i := range results {
		gm, wm := again[i].Report.Modeled(), results[i].Report.Modeled()
		if !reflect.DeepEqual(&gm, &wm) {
			t.Errorf("tenant %s: chaos run not deterministic", results[i].ID)
		}
	}
}

// TestChaosUnevenStreams ends tenants at different epochs — one stream
// a third as long as the others — so Finish shrinks the active set
// mid-run; the surviving tenants must keep pricing epochs to the end.
func TestChaosUnevenStreams(t *testing.T) {
	trace := testTrace(t)
	short, err := workload.ByName("S1", 11)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	shortTrace, err := short.World.Run(len(trace.Frames) / 3)
	if err != nil {
		t.Fatalf("short trace: %v", err)
	}

	sp := tenantSpecs(t, 3, 2)
	sp[2].Source = pipeline.NewTraceSource(shortTrace)
	pool, err := NewPool(poolConfig(t, 2, true))
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	results, err := Run(pool, sp)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := results[2].Report.Frames; got != len(shortTrace.Frames) {
		t.Errorf("short tenant processed %d frames, want %d", got, len(shortTrace.Frames))
	}
	for _, i := range []int{0, 1} {
		if got := results[i].Report.Frames; got != len(trace.Frames) {
			t.Errorf("tenant %s processed %d frames, want %d", results[i].ID, got, len(trace.Frames))
		}
	}
}
