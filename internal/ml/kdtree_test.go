package ml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for j := range pts[i] {
			pts[i][j] = rng.Float64() * 1000
		}
	}
	return pts
}

func TestKDTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		dim := 1 + rng.Intn(5)
		pts := randomPoints(rng, n, dim)
		tree := newKDTree(pts)
		k := 1 + rng.Intn(8)
		for q := 0; q < 10; q++ {
			query := make([]float64, dim)
			for j := range query {
				query[j] = rng.Float64() * 1000
			}
			want := nearest(pts, query, k)
			got := tree.kNearest(query, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d: kd %v vs brute %v", trial, k, got, want)
				}
			}
		}
	}
}

func TestKDTreeDuplicatePointsTieBreak(t *testing.T) {
	// Many identical points: neighbor order must be by index, exactly as
	// brute force.
	pts := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}, {1, 1}}
	tree := newKDTree(pts)
	got := tree.kNearest([]float64{5, 5}, 3)
	want := nearest(pts, []float64{5, 5}, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kd %v vs brute %v", got, want)
		}
	}
}

func TestKDTreeKLargerThanN(t *testing.T) {
	pts := [][]float64{{1}, {2}, {3}}
	tree := newKDTree(pts)
	got := tree.kNearest([]float64{0}, 10)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestKNNModelsIdenticalWithAndWithoutIndex(t *testing.T) {
	// Train two classifiers on the same data, one below and one above the
	// index threshold, by padding the large one with far-away points that
	// never enter any k-neighborhood of the probed region.
	rng := rand.New(rand.NewSource(23))
	x, y := linearlySeparable(300, 23) // >= kdLeafThreshold: indexed
	indexed := &KNNClassifier{K: 5}
	if err := indexed.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if indexed.tree == nil {
		t.Fatal("large training set not indexed")
	}
	brute := &KNNClassifier{K: 5}
	if err := brute.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	brute.tree = nil // force the scan path
	for i := 0; i < 500; i++ {
		q := []float64{rng.Float64() * 260, rng.Float64() * 260}
		a, err := indexed.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := brute.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("prediction diverged at %v: indexed=%v brute=%v", q, a, b)
		}
	}
}

func TestKDTreePropertyAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 64+rng.Intn(64), 4)
		tree := newKDTree(pts)
		q := make([]float64, 4)
		for j := range q {
			q[j] = rng.Float64() * 1000
		}
		want := nearest(pts, q, 5)
		got := tree.kNearest(q, 5)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// BenchmarkKNNPredictBrute forces the linear scan for comparison with
// ml_test.go's BenchmarkKNNPredict (which uses the k-d index on the same
// 2000-point set).
func BenchmarkKNNPredictBrute(b *testing.B) {
	x, y := linearlySeparable(2000, 21)
	c := &KNNClassifier{K: 5}
	if err := c.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	c.tree = nil
	q := []float64{100, 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Predict(q); err != nil {
			b.Fatal(err)
		}
	}
}
