package ml

import (
	"container/heap"
	"sort"
)

// kdTree is an exact k-nearest-neighbor index over low-dimensional
// points (the association models use 4-D box vectors). It returns
// exactly the same neighbors as the brute-force scan, including the
// deterministic tie-break on point index, so swapping it in cannot
// change model predictions — only their cost: queries drop from O(n) to
// roughly O(log n) on the box distributions the tracker produces.
type kdTree struct {
	points [][]float64
	// nodes is a balanced implicit tree over point indices.
	root *kdNode
	dim  int
}

type kdNode struct {
	index       int // index into points
	axis        int
	left, right *kdNode
}

// kdLeafThreshold is the dataset size below which brute force wins (no
// tree build or traversal overhead).
const kdLeafThreshold = 64

// newKDTree builds the index; points must be non-empty and rectangular
// (callers validate via checkXY/checkXYReg).
func newKDTree(points [][]float64) *kdTree {
	t := &kdTree{points: points, dim: len(points[0])}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx, 0)
	return t
}

func (t *kdTree) build(idx []int, depth int) *kdNode {
	if len(idx) == 0 {
		return nil
	}
	axis := depth % t.dim
	// Median split by the axis coordinate; ties by index keep the build
	// deterministic.
	sort.Slice(idx, func(a, b int) bool {
		va, vb := t.points[idx[a]][axis], t.points[idx[b]][axis]
		if va != vb {
			return va < vb
		}
		return idx[a] < idx[b]
	})
	mid := len(idx) / 2
	node := &kdNode{index: idx[mid], axis: axis}
	node.left = t.build(idx[:mid], depth+1)
	node.right = t.build(idx[mid+1:], depth+1)
	return node
}

// neighbor is a candidate result; worseThan defines the max-heap order
// (the worst current candidate sits at the top) and doubles as the
// brute-force tie-break: larger distance is worse; at equal distance,
// larger index is worse.
type neighbor struct {
	dist  float64
	index int
}

func (a neighbor) worseThan(b neighbor) bool {
	if a.dist != b.dist {
		return a.dist > b.dist
	}
	return a.index > b.index
}

// neighborHeap is a max-heap of the k best candidates so far.
type neighborHeap []neighbor

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].worseThan(h[j]) }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

// kNearest returns the indices of the k nearest points to q in
// increasing (dist, index) order — identical to the brute-force nearest.
func (t *kdTree) kNearest(q []float64, k int) []int {
	if k > len(t.points) {
		k = len(t.points)
	}
	h := make(neighborHeap, 0, k+1)
	t.search(t.root, q, k, &h)
	// Heap holds the k best in max-heap order; sort ascending.
	out := make([]neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(a, b int) bool { return out[b].worseThan(out[a]) })
	idx := make([]int, len(out))
	for i, n := range out {
		idx[i] = n.index
	}
	return idx
}

func (t *kdTree) search(n *kdNode, q []float64, k int, h *neighborHeap) {
	if n == nil {
		return
	}
	cand := neighbor{dist: dist2(t.points[n.index], q), index: n.index}
	if h.Len() < k {
		heap.Push(h, cand)
	} else if (*h)[0].worseThan(cand) {
		heap.Pop(h)
		heap.Push(h, cand)
	}

	diff := q[n.axis] - t.points[n.index][n.axis]
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	t.search(near, q, k, h)
	// Visit the far side only if the splitting plane could still hold a
	// better candidate. With equal distances breaking ties by index, a
	// plane at exactly the current worst distance can still hide a
	// lower-index point, so use <= rather than <.
	if h.Len() < k || diff*diff <= (*h)[0].dist {
		t.search(far, q, k, h)
	}
}
