// Package ml implements the lightweight, CPU-friendly learning models the
// paper's cross-camera association module is built from, plus every
// baseline its evaluation compares against (Figs. 10 and 11):
//
//   - classification (does this object appear on camera i'?): KNN (the
//     paper's choice), logistic regression, linear SVM, CART decision tree;
//   - regression (where does it appear?): KNN, ordinary least squares,
//     RANSAC, and homography mapping.
//
// All models are deliberately simple: the paper's point is that
// location-based association must run in real time on resource-starved
// cameras, so semantic/deep models are out of scope.
package ml

import (
	"errors"
	"fmt"
)

// ErrNotFitted is returned by Predict when the model has not been fitted.
var ErrNotFitted = errors.New("ml: model not fitted")

// Classifier is a binary classifier over float feature vectors.
type Classifier interface {
	// Fit trains on feature rows X with boolean labels y.
	Fit(x [][]float64, y []bool) error
	// Predict returns the predicted label for one feature vector.
	Predict(x []float64) (bool, error)
	// Name identifies the model in experiment output.
	Name() string
}

// Regressor predicts a multi-output real vector (here: the 4 bounding-box
// coordinates on the target camera) from a feature vector.
type Regressor interface {
	// Fit trains on feature rows X with target rows Y.
	Fit(x [][]float64, y [][]float64) error
	// Predict returns the predicted target vector for one feature vector.
	Predict(x []float64) ([]float64, error)
	// Name identifies the model in experiment output.
	Name() string
}

// checkXY validates a classification training set.
func checkXY(x [][]float64, y []bool) (dim int, err error) {
	if len(x) == 0 {
		return 0, errors.New("ml: empty training set")
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("ml: %d feature rows vs %d labels", len(x), len(y))
	}
	dim = len(x[0])
	if dim == 0 {
		return 0, errors.New("ml: zero-dimensional features")
	}
	for i, row := range x {
		if len(row) != dim {
			return 0, fmt.Errorf("ml: ragged feature row %d (%d vs %d)", i, len(row), dim)
		}
	}
	return dim, nil
}

// checkXYReg validates a regression training set and returns feature and
// target dimensions.
func checkXYReg(x [][]float64, y [][]float64) (dim, out int, err error) {
	if len(x) == 0 {
		return 0, 0, errors.New("ml: empty training set")
	}
	if len(x) != len(y) {
		return 0, 0, fmt.Errorf("ml: %d feature rows vs %d target rows", len(x), len(y))
	}
	dim = len(x[0])
	out = len(y[0])
	if dim == 0 || out == 0 {
		return 0, 0, errors.New("ml: zero-dimensional features or targets")
	}
	for i := range x {
		if len(x[i]) != dim {
			return 0, 0, fmt.Errorf("ml: ragged feature row %d", i)
		}
		if len(y[i]) != out {
			return 0, 0, fmt.Errorf("ml: ragged target row %d", i)
		}
	}
	return dim, out, nil
}

// ClassificationMetrics holds the precision/recall pair the paper reports
// for the association classifier (Fig. 10).
type ClassificationMetrics struct {
	Precision float64
	Recall    float64
	Accuracy  float64
	TP        int
	FP        int
	FN        int
	TN        int
}

// EvaluateClassifier computes precision/recall of a fitted classifier on
// a held-out test set.
func EvaluateClassifier(c Classifier, x [][]float64, y []bool) (ClassificationMetrics, error) {
	var m ClassificationMetrics
	if len(x) != len(y) {
		return m, fmt.Errorf("ml: %d test rows vs %d labels", len(x), len(y))
	}
	for i, row := range x {
		pred, err := c.Predict(row)
		if err != nil {
			return m, fmt.Errorf("ml: evaluating %s: %w", c.Name(), err)
		}
		switch {
		case pred && y[i]:
			m.TP++
		case pred && !y[i]:
			m.FP++
		case !pred && y[i]:
			m.FN++
		default:
			m.TN++
		}
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if n := m.TP + m.FP + m.FN + m.TN; n > 0 {
		m.Accuracy = float64(m.TP+m.TN) / float64(n)
	}
	return m, nil
}

// EvaluateRegressor computes the mean absolute error across all outputs
// of a fitted regressor on a held-out test set (the paper's Fig. 11
// metric).
func EvaluateRegressor(r Regressor, x [][]float64, y [][]float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("ml: %d test rows vs %d targets", len(x), len(y))
	}
	if len(x) == 0 {
		return 0, errors.New("ml: empty test set")
	}
	var sum float64
	var count int
	for i, row := range x {
		pred, err := r.Predict(row)
		if err != nil {
			return 0, fmt.Errorf("ml: evaluating %s: %w", r.Name(), err)
		}
		if len(pred) != len(y[i]) {
			return 0, fmt.Errorf("ml: %s predicted %d outputs, want %d", r.Name(), len(pred), len(y[i]))
		}
		for k := range pred {
			sum += abs(pred[k] - y[i][k])
			count++
		}
	}
	return sum / float64(count), nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
