package ml

import (
	"fmt"
	"sort"
)

// TreeClassifier is a CART-style binary decision tree with Gini-impurity
// splits, one of the paper's classification baselines.
type TreeClassifier struct {
	// MaxDepth bounds tree depth (default 8).
	MaxDepth int
	// MinSamplesLeaf is the minimum examples per leaf (default 3).
	MinSamplesLeaf int

	dim  int
	root *treeNode
}

type treeNode struct {
	// Internal nodes.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// Leaves.
	leaf  bool
	label bool
}

// Name implements Classifier.
func (t *TreeClassifier) Name() string { return "tree" }

// Fit grows the tree greedily, choosing at each node the (feature,
// threshold) split that minimizes weighted Gini impurity.
func (t *TreeClassifier) Fit(x [][]float64, y []bool) error {
	dim, err := checkXY(x, y)
	if err != nil {
		return fmt.Errorf("tree: %w", err)
	}
	t.dim = dim
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 8
	}
	minLeaf := t.MinSamplesLeaf
	if minLeaf <= 0 {
		minLeaf = 3
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = grow(x, y, idx, maxDepth, minLeaf)
	return nil
}

// Predict implements Classifier by descending the tree.
func (t *TreeClassifier) Predict(x []float64) (bool, error) {
	if t.root == nil {
		return false, ErrNotFitted
	}
	if len(x) != t.dim {
		return false, fmt.Errorf("tree: feature dim %d, want %d", len(x), t.dim)
	}
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label, nil
}

func grow(x [][]float64, y []bool, idx []int, depth, minLeaf int) *treeNode {
	pos := 0
	for _, i := range idx {
		if y[i] {
			pos++
		}
	}
	majority := pos*2 >= len(idx)
	if depth == 0 || len(idx) < 2*minLeaf || pos == 0 || pos == len(idx) {
		return &treeNode{leaf: true, label: majority}
	}

	bestGini := gini(pos, len(idx))
	bestFeature, bestThreshold := -1, 0.0
	dim := len(x[0])
	order := make([]int, len(idx))
	for f := 0; f < dim; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		leftPos := 0
		for k := 0; k < len(order)-1; k++ {
			if y[order[k]] {
				leftPos++
			}
			// Only split between distinct feature values.
			if x[order[k]][f] == x[order[k+1]][f] {
				continue
			}
			nl, nr := k+1, len(order)-k-1
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			g := (float64(nl)*gini(leftPos, nl) + float64(nr)*gini(pos-leftPos, nr)) / float64(len(order))
			if g < bestGini-1e-12 {
				bestGini = g
				bestFeature = f
				bestThreshold = (x[order[k]][f] + x[order[k+1]][f]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, label: majority}
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      grow(x, y, leftIdx, depth-1, minLeaf),
		right:     grow(x, y, rightIdx, depth-1, minLeaf),
	}
}

// gini returns the Gini impurity of a node with pos positives out of n.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// Depth returns the depth of the fitted tree (0 for a single leaf), for
// introspection in tests.
func (t *TreeClassifier) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
