package ml

import (
	"fmt"
	"math/rand"
)

// RANSACRegressor wraps a linear regressor in the random-sample-consensus
// loop of Fischler & Bolles, one of the paper's regression baselines
// ("a robust regression model in the presence of many data outliers").
type RANSACRegressor struct {
	// Iterations is the number of random minimal samples tried
	// (default 100).
	Iterations int
	// SampleSize is the size of each minimal sample (default dim+2).
	SampleSize int
	// InlierThreshold is the max mean-absolute residual for a point to
	// count as an inlier (default 50, in pixels).
	InlierThreshold float64
	// Seed drives the deterministic sampling sequence.
	Seed int64

	inner LinearRegressor
	dim   int
	ready bool
}

// Name implements Regressor.
func (r *RANSACRegressor) Name() string { return "ransac" }

// Fit runs the RANSAC loop: sample a minimal subset, fit, count inliers,
// keep the consensus-maximizing model, then refit on its inlier set.
func (r *RANSACRegressor) Fit(x [][]float64, y [][]float64) error {
	dim, _, err := checkXYReg(x, y)
	if err != nil {
		return fmt.Errorf("ransac: %w", err)
	}
	r.dim = dim

	iters := r.Iterations
	if iters <= 0 {
		iters = 100
	}
	sample := r.SampleSize
	if sample <= 0 {
		sample = dim + 2
	}
	if sample > len(x) {
		sample = len(x)
	}
	thresh := r.InlierThreshold
	if thresh <= 0 {
		thresh = 50
	}

	rng := rand.New(rand.NewSource(r.Seed + 1))
	bestInliers := []int(nil)
	for it := 0; it < iters; it++ {
		idx := rng.Perm(len(x))[:sample]
		var cand LinearRegressor
		if err := cand.Fit(gather(x, idx), gather(y, idx)); err != nil {
			continue // degenerate sample
		}
		var inliers []int
		for i := range x {
			pred, err := cand.Predict(x[i])
			if err != nil {
				continue
			}
			if meanAbsResidual(pred, y[i]) <= thresh {
				inliers = append(inliers, i)
			}
		}
		if len(inliers) > len(bestInliers) {
			bestInliers = inliers
		}
	}
	if len(bestInliers) < sample {
		// No consensus found; fall back to fitting everything.
		if err := r.inner.Fit(x, y); err != nil {
			return fmt.Errorf("ransac fallback: %w", err)
		}
		r.ready = true
		return nil
	}
	if err := r.inner.Fit(gather(x, bestInliers), gather(y, bestInliers)); err != nil {
		return fmt.Errorf("ransac refit: %w", err)
	}
	r.ready = true
	return nil
}

// Predict implements Regressor.
func (r *RANSACRegressor) Predict(x []float64) ([]float64, error) {
	if !r.ready {
		return nil, ErrNotFitted
	}
	return r.inner.Predict(x)
}

func gather[T any](rows []T, idx []int) []T {
	out := make([]T, len(idx))
	for k, i := range idx {
		out[k] = rows[i]
	}
	return out
}

func meanAbsResidual(pred, want []float64) float64 {
	var sum float64
	for i := range pred {
		sum += abs(pred[i] - want[i])
	}
	return sum / float64(len(pred))
}
