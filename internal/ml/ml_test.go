package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// linearlySeparable builds a 2D dataset where class is x0 + x1 > 100,
// scaled like pixel coordinates.
func linearlySeparable(n int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		a, b := rng.Float64()*200, rng.Float64()*200
		// Margin: push points away from the boundary so every model can
		// separate them.
		if a+b > 200 {
			a += 30
			y[i] = true
		} else {
			a -= 30
		}
		x[i] = []float64{a, b}
	}
	return x, y
}

func classifiers() []Classifier {
	return []Classifier{
		&KNNClassifier{K: 5},
		&LogisticClassifier{},
		&SVMClassifier{},
		&TreeClassifier{},
	}
}

func TestClassifiersSeparableData(t *testing.T) {
	xTrain, yTrain := linearlySeparable(300, 1)
	xTest, yTest := linearlySeparable(200, 2)
	for _, c := range classifiers() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			if err := c.Fit(xTrain, yTrain); err != nil {
				t.Fatal(err)
			}
			m, err := EvaluateClassifier(c, xTest, yTest)
			if err != nil {
				t.Fatal(err)
			}
			if m.Accuracy < 0.9 {
				t.Fatalf("%s accuracy %.3f < 0.9 (%+v)", c.Name(), m.Accuracy, m)
			}
		})
	}
}

func TestClassifiersNotFitted(t *testing.T) {
	for _, c := range classifiers() {
		if _, err := c.Predict([]float64{1, 2}); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: err = %v, want ErrNotFitted", c.Name(), err)
		}
	}
}

func TestClassifiersBadInputs(t *testing.T) {
	for _, c := range classifiers() {
		if err := c.Fit(nil, nil); err == nil {
			t.Errorf("%s: empty fit accepted", c.Name())
		}
		if err := c.Fit([][]float64{{1, 2}}, []bool{true, false}); err == nil {
			t.Errorf("%s: mismatched labels accepted", c.Name())
		}
		if err := c.Fit([][]float64{{1, 2}, {3}}, []bool{true, false}); err == nil {
			t.Errorf("%s: ragged rows accepted", c.Name())
		}
	}
	for _, c := range classifiers() {
		x, y := linearlySeparable(50, 3)
		if err := c.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Predict([]float64{1}); err == nil {
			t.Errorf("%s: wrong predict dim accepted", c.Name())
		}
	}
}

func TestKNNClassifierExactNeighbors(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {10, 10}, {10, 11}, {10, 12}}
	y := []bool{false, false, true, true, true}
	c := &KNNClassifier{K: 3}
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict([]float64{10, 10.5})
	if err != nil || !got {
		t.Fatalf("predict near positives = %v, %v", got, err)
	}
	got, err = c.Predict([]float64{0, 0.5})
	if err != nil || got {
		t.Fatalf("predict near negatives = %v, %v", got, err)
	}
}

func TestKNNClassifierTieBreaksPositive(t *testing.T) {
	x := [][]float64{{0, 0}, {2, 0}}
	y := []bool{false, true}
	c := &KNNClassifier{K: 2}
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict([]float64{1, 0})
	if err != nil || !got {
		t.Fatalf("tie should break positive, got %v, %v", got, err)
	}
}

func TestKNNRegressorLookupBehaviour(t *testing.T) {
	x := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	y := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	r := &KNNRegressor{K: 2}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Exact match returns the stored case.
	pred, err := r.Predict([]float64{10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] != 3 || pred[1] != 4 {
		t.Fatalf("exact lookup = %v", pred)
	}
	// Near a point, prediction is pulled toward its target.
	pred, err = r.Predict([]float64{9, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred[0]-3) > 1 {
		t.Fatalf("near lookup = %v", pred)
	}
}

func TestKNNRegressorWeightsAreConvex(t *testing.T) {
	// Prediction always lies within the convex hull of neighbor targets.
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := [][]float64{{0}, {10}, {20}, {30}}
	r := &KNNRegressor{K: 4}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	f := func(q float64) bool {
		q = math.Mod(math.Abs(q), 3)
		pred, err := r.Predict([]float64{q})
		if err != nil {
			return false
		}
		return pred[0] >= -1e-9 && pred[0] <= 30+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearRegressorRecoversPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y [][]float64
	for i := 0; i < 100; i++ {
		a, b := rng.Float64()*100, rng.Float64()*100
		x = append(x, []float64{a, b})
		y = append(y, []float64{2*a - b + 3, a + 4})
	}
	r := &LinearRegressor{}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := r.Predict([]float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred[0]-3) > 1e-6 || math.Abs(pred[1]-14) > 1e-6 {
		t.Fatalf("pred = %v", pred)
	}
	mae, err := EvaluateRegressor(r, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 1e-6 {
		t.Fatalf("mae = %v", mae)
	}
}

func TestRANSACIgnoresOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y [][]float64
	// 80 clean points on y = 3x + 1, 20 wild outliers.
	for i := 0; i < 80; i++ {
		a := rng.Float64() * 100
		x = append(x, []float64{a})
		y = append(y, []float64{3*a + 1})
	}
	for i := 0; i < 20; i++ {
		a := rng.Float64() * 100
		x = append(x, []float64{a})
		y = append(y, []float64{3*a + 1 + 500 + rng.Float64()*500})
	}
	var plain LinearRegressor
	if err := plain.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	ransac := &RANSACRegressor{Iterations: 200, InlierThreshold: 10, Seed: 1}
	if err := ransac.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p1, _ := plain.Predict([]float64{50})
	p2, _ := ransac.Predict([]float64{50})
	truth := 151.0
	if math.Abs(p2[0]-truth) > 5 {
		t.Fatalf("ransac pred = %v, want ~%v", p2[0], truth)
	}
	if math.Abs(p1[0]-truth) < math.Abs(p2[0]-truth) {
		t.Fatalf("plain OLS (%v) beat RANSAC (%v) on outlier data", p1[0], p2[0])
	}
}

func TestRANSACFallbackOnTinyData(t *testing.T) {
	// Fewer points than the default sample size: must still fit.
	x := [][]float64{{0}, {1}, {2}}
	y := [][]float64{{0}, {2}, {4}}
	r := &RANSACRegressor{Iterations: 10, Seed: 2}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := r.Predict([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred[0]-6) > 1e-6 {
		t.Fatalf("pred = %v", pred)
	}
}

func TestHomographyRegressorAffineBoxes(t *testing.T) {
	// Boxes mapped by a pure translation: homography fits exactly.
	rng := rand.New(rand.NewSource(7))
	var x, y [][]float64
	for i := 0; i < 30; i++ {
		x1, y1 := rng.Float64()*500, rng.Float64()*500
		w, h := 20+rng.Float64()*50, 20+rng.Float64()*50
		x = append(x, []float64{x1, y1, x1 + w, y1 + h})
		y = append(y, []float64{x1 + 100, y1 - 50, x1 + w + 100, y1 + h - 50})
	}
	r := &HomographyRegressor{}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	mae, err := EvaluateRegressor(r, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 1e-3 {
		t.Fatalf("mae = %v", mae)
	}
}

func TestHomographyRegressorRejectsBadDims(t *testing.T) {
	r := &HomographyRegressor{}
	if err := r.Fit([][]float64{{1, 2}}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("2-dim features accepted")
	}
	if _, err := r.Predict([]float64{1, 2, 3, 4}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("err = %v", err)
	}
}

func TestHomographyRegressorNormalizesCorners(t *testing.T) {
	// A homography that flips the plane must still yield min<=max boxes.
	var x, y [][]float64
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		x1, y1 := rng.Float64()*100, rng.Float64()*100
		x = append(x, []float64{x1, y1, x1 + 10, y1 + 10})
		y = append(y, []float64{-x1 - 10, -y1 - 10, -x1, -y1}) // mirrored
	}
	r := &HomographyRegressor{}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := r.Predict([]float64{5, 5, 15, 15})
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] > pred[2] || pred[1] > pred[3] {
		t.Fatalf("unnormalized box %v", pred)
	}
}

func TestRegressorsBadInputs(t *testing.T) {
	regs := []Regressor{&KNNRegressor{}, &LinearRegressor{}, &RANSACRegressor{}}
	for _, r := range regs {
		if err := r.Fit(nil, nil); err == nil {
			t.Errorf("%s: empty fit accepted", r.Name())
		}
		if err := r.Fit([][]float64{{1}}, [][]float64{{1}, {2}}); err == nil {
			t.Errorf("%s: mismatched fit accepted", r.Name())
		}
		if _, err := r.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: err = %v, want ErrNotFitted", r.Name(), err)
		}
	}
}

func TestEvaluateClassifierCounts(t *testing.T) {
	c := &KNNClassifier{K: 1}
	x := [][]float64{{0}, {10}}
	y := []bool{false, true}
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Test points: two right, one wrong on each side.
	tx := [][]float64{{1}, {9}, {2}, {8}}
	ty := []bool{false, true, true, false}
	m, err := EvaluateClassifier(c, tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if m.TP != 1 || m.TN != 1 || m.FP != 1 || m.FN != 1 {
		t.Fatalf("counts = %+v", m)
	}
	if m.Precision != 0.5 || m.Recall != 0.5 || m.Accuracy != 0.5 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestEvaluateRegressorErrors(t *testing.T) {
	r := &LinearRegressor{}
	if _, err := EvaluateRegressor(r, [][]float64{{1}}, nil); err == nil {
		t.Fatal("mismatched eval accepted")
	}
	if _, err := EvaluateRegressor(r, nil, nil); err == nil {
		t.Fatal("empty eval accepted")
	}
}

func TestTreeDepthBounded(t *testing.T) {
	x, y := linearlySeparable(500, 9)
	tr := &TreeClassifier{MaxDepth: 3}
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 3 {
		t.Fatalf("depth %d > 3", d)
	}
}

func TestTreePureNodeIsLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []bool{true, true, true}
	tr := &TreeClassifier{}
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Fatalf("pure data should yield a leaf, depth=%d", tr.Depth())
	}
	got, err := tr.Predict([]float64{99})
	if err != nil || !got {
		t.Fatalf("pure-positive tree predicted %v, %v", got, err)
	}
}

func TestSigmoid(t *testing.T) {
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
	if s := sigmoid(100); s <= 0.999 {
		t.Fatalf("sigmoid(100) = %v", s)
	}
	if s := sigmoid(-100); s >= 0.001 {
		t.Fatalf("sigmoid(-100) = %v", s)
	}
	// Symmetric: sigmoid(-z) = 1 - sigmoid(z).
	f := func(z float64) bool {
		z = math.Mod(z, 50)
		return math.Abs(sigmoid(-z)-(1-sigmoid(z))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScalerConstantFeature(t *testing.T) {
	x := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	s := fitScaler(x)
	out := s.apply([]float64{5, 2})
	if out[0] != 0 {
		t.Fatalf("constant feature should centre to 0, got %v", out[0])
	}
	if math.IsNaN(out[1]) || math.IsInf(out[1], 0) {
		t.Fatalf("scaled = %v", out)
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	x, y := linearlySeparable(2000, 21)
	c := &KNNClassifier{K: 5}
	if err := c.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	q := []float64{100, 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Predict(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogisticFit(b *testing.B) {
	x, y := linearlySeparable(500, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &LogisticClassifier{Epochs: 100}
		if err := c.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
