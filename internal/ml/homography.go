package ml

import (
	"fmt"

	"mvs/internal/mat"
)

// HomographyRegressor maps bounding boxes between cameras through a
// single planar homography fitted on box corner correspondences. It is
// the paper's weakest regression baseline: a homography "can only map
// points in a 2D plane like ground in two cameras but not the bounding
// box coordinates, which can be affected by the object sizes (in all
// three dimensions including height) and facing directions" — so it
// systematically mis-places boxes for tall or rotated objects.
//
// Features must be 4-vectors [MinX, MinY, MaxX, MaxY]; both corners of
// each training box contribute a point correspondence.
type HomographyRegressor struct {
	h      mat.Homography
	fitted bool
}

// Name implements Regressor.
func (h *HomographyRegressor) Name() string { return "homography" }

// Fit estimates a single homography from all corner correspondences.
func (h *HomographyRegressor) Fit(x [][]float64, y [][]float64) error {
	dim, out, err := checkXYReg(x, y)
	if err != nil {
		return fmt.Errorf("homography regressor: %w", err)
	}
	if dim != 4 || out != 4 {
		return fmt.Errorf("homography regressor: needs 4-dim boxes, got dim=%d out=%d", dim, out)
	}
	src := make([][2]float64, 0, 2*len(x))
	dst := make([][2]float64, 0, 2*len(x))
	for i := range x {
		src = append(src, [2]float64{x[i][0], x[i][1]}, [2]float64{x[i][2], x[i][3]})
		dst = append(dst, [2]float64{y[i][0], y[i][1]}, [2]float64{y[i][2], y[i][3]})
	}
	hom, err := mat.EstimateHomography(src, dst)
	if err != nil {
		return fmt.Errorf("homography regressor: %w", err)
	}
	h.h = hom
	h.fitted = true
	return nil
}

// Predict maps both corners of the box through the homography and returns
// the normalized (min, max) box.
func (h *HomographyRegressor) Predict(x []float64) ([]float64, error) {
	if !h.fitted {
		return nil, ErrNotFitted
	}
	if len(x) != 4 {
		return nil, fmt.Errorf("homography regressor: feature dim %d, want 4", len(x))
	}
	x1, y1 := h.h.Apply(x[0], x[1])
	x2, y2 := h.h.Apply(x[2], x[3])
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return []float64{x1, y1, x2, y2}, nil
}
