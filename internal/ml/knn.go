package ml

import (
	"fmt"
	"math"
	"sort"
)

// KNNClassifier is the paper's association classifier: a non-parametric
// K-nearest-neighbors vote over the labelled training cases, acting as "a
// special lookup table which uses the nearest case(s) in the memory to
// generate the prediction".
type KNNClassifier struct {
	// K is the number of neighbors consulted; 0 means the default of 5.
	K int

	dim    int
	points [][]float64
	labels []bool
	tree   *kdTree
}

// Name implements Classifier.
func (k *KNNClassifier) Name() string { return "knn" }

// Fit stores the training set (KNN is lazy; there is nothing to optimize).
func (k *KNNClassifier) Fit(x [][]float64, y []bool) error {
	dim, err := checkXY(x, y)
	if err != nil {
		return fmt.Errorf("knn classifier: %w", err)
	}
	k.dim = dim
	k.points = x
	k.labels = y
	k.tree = nil
	if len(x) >= kdLeafThreshold {
		k.tree = newKDTree(x)
	}
	return nil
}

// Predict returns the majority label among the K nearest training points.
// Ties break toward positive, matching the deployment bias: a missed
// association costs a redundant tracker, while the matching step
// downstream filters false positives.
func (k *KNNClassifier) Predict(x []float64) (bool, error) {
	if k.points == nil {
		return false, ErrNotFitted
	}
	if len(x) != k.dim {
		return false, fmt.Errorf("knn classifier: feature dim %d, want %d", len(x), k.dim)
	}
	idx := nearestIdx(k.points, k.tree, x, k.kEff())
	pos := 0
	for _, i := range idx {
		if k.labels[i] {
			pos++
		}
	}
	return pos*2 >= len(idx), nil
}

func (k *KNNClassifier) kEff() int {
	if k.K > 0 {
		return k.K
	}
	return 5
}

// KNNRegressor is the paper's association regressor: it predicts the
// mapped bounding box on the target camera as the inverse-distance
// weighted average of the K nearest training correspondences.
type KNNRegressor struct {
	// K is the number of neighbors consulted; 0 means the default of 5.
	K int

	dim     int
	out     int
	points  [][]float64
	targets [][]float64
	tree    *kdTree
}

// Name implements Regressor.
func (k *KNNRegressor) Name() string { return "knn" }

// Fit stores the training correspondences.
func (k *KNNRegressor) Fit(x [][]float64, y [][]float64) error {
	dim, out, err := checkXYReg(x, y)
	if err != nil {
		return fmt.Errorf("knn regressor: %w", err)
	}
	k.dim, k.out = dim, out
	k.points = x
	k.targets = y
	k.tree = nil
	if len(x) >= kdLeafThreshold {
		k.tree = newKDTree(x)
	}
	return nil
}

// Predict returns the inverse-distance-weighted mean of the nearest
// neighbors' targets. An exact feature match returns that case's target
// directly (true lookup-table behaviour).
func (k *KNNRegressor) Predict(x []float64) ([]float64, error) {
	if k.points == nil {
		return nil, ErrNotFitted
	}
	if len(x) != k.dim {
		return nil, fmt.Errorf("knn regressor: feature dim %d, want %d", len(x), k.dim)
	}
	idx := nearestIdx(k.points, k.tree, x, k.kEff())
	pred := make([]float64, k.out)
	var wsum float64
	for _, i := range idx {
		d := dist2(k.points[i], x)
		if d == 0 {
			copy(pred, k.targets[i])
			return pred, nil
		}
		w := 1 / math.Sqrt(d)
		wsum += w
		for j := range pred {
			pred[j] += w * k.targets[i][j]
		}
	}
	for j := range pred {
		pred[j] /= wsum
	}
	return pred, nil
}

func (k *KNNRegressor) kEff() int {
	if k.K > 0 {
		return k.K
	}
	return 5
}

// nearestIdx dispatches between the k-d index (large training sets) and
// the brute-force scan (small ones); both return identical neighbor
// lists including tie-breaks.
func nearestIdx(points [][]float64, tree *kdTree, x []float64, k int) []int {
	if tree != nil {
		return tree.kNearest(x, k)
	}
	return nearest(points, x, k)
}

// nearest returns the indices of the k points nearest to x (all points
// when k >= len(points)), in increasing distance order.
func nearest(points [][]float64, x []float64, k int) []int {
	type cand struct {
		i int
		d float64
	}
	cands := make([]cand, len(points))
	for i, p := range points {
		cands[i] = cand{i, dist2(p, x)}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].i < cands[b].i
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].i
	}
	return out
}

// dist2 returns the squared Euclidean distance between equal-length
// vectors.
func dist2(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}
