package ml

import (
	"fmt"
	"math"

	"mvs/internal/mat"
)

// featureScaler standardizes features to zero mean and unit variance,
// which the gradient-trained linear models need for stable convergence on
// pixel-scale inputs.
type featureScaler struct {
	mean  []float64
	scale []float64
}

func fitScaler(x [][]float64) featureScaler {
	dim := len(x[0])
	s := featureScaler{mean: make([]float64, dim), scale: make([]float64, dim)}
	for _, row := range x {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.mean[j]
			s.scale[j] += d * d
		}
	}
	for j := range s.scale {
		s.scale[j] = math.Sqrt(s.scale[j] / n)
		if s.scale[j] < 1e-9 {
			s.scale[j] = 1 // constant feature: leave centred only
		}
	}
	return s
}

func (s featureScaler) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.scale[j]
	}
	return out
}

// LogisticClassifier is L2-regularized logistic regression trained by
// batch gradient descent, one of the paper's classification baselines.
type LogisticClassifier struct {
	// Epochs is the number of full-batch gradient steps (default 500).
	Epochs int
	// LearningRate is the gradient step size (default 0.1).
	LearningRate float64
	// L2 is the regularization strength (default 1e-4).
	L2 float64

	dim     int
	weights []float64 // last element is the bias
	scaler  featureScaler
}

// Name implements Classifier.
func (l *LogisticClassifier) Name() string { return "logistic" }

// Fit trains the model with full-batch gradient descent on the logistic
// loss.
func (l *LogisticClassifier) Fit(x [][]float64, y []bool) error {
	dim, err := checkXY(x, y)
	if err != nil {
		return fmt.Errorf("logistic: %w", err)
	}
	l.dim = dim
	l.scaler = fitScaler(x)
	scaled := make([][]float64, len(x))
	for i, row := range x {
		scaled[i] = l.scaler.apply(row)
	}

	epochs := l.Epochs
	if epochs <= 0 {
		epochs = 500
	}
	lr := l.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	l2 := l.L2
	if l2 <= 0 {
		l2 = 1e-4
	}

	w := make([]float64, dim+1)
	grad := make([]float64, dim+1)
	n := float64(len(x))
	for e := 0; e < epochs; e++ {
		for j := range grad {
			grad[j] = 0
		}
		for i, row := range scaled {
			p := sigmoid(dotBias(w, row))
			t := 0.0
			if y[i] {
				t = 1
			}
			g := p - t
			for j, v := range row {
				grad[j] += g * v
			}
			grad[dim] += g
		}
		for j := 0; j < dim; j++ {
			w[j] -= lr * (grad[j]/n + l2*w[j])
		}
		w[dim] -= lr * grad[dim] / n
	}
	l.weights = w
	return nil
}

// Predict implements Classifier using the 0.5 probability threshold.
func (l *LogisticClassifier) Predict(x []float64) (bool, error) {
	if l.weights == nil {
		return false, ErrNotFitted
	}
	if len(x) != l.dim {
		return false, fmt.Errorf("logistic: feature dim %d, want %d", len(x), l.dim)
	}
	return sigmoid(dotBias(l.weights, l.scaler.apply(x))) >= 0.5, nil
}

// SVMClassifier is a linear soft-margin SVM trained with the Pegasos
// stochastic sub-gradient method, one of the paper's classification
// baselines.
type SVMClassifier struct {
	// Epochs is the number of passes over the data (default 200).
	Epochs int
	// Lambda is the regularization strength (default 1e-3).
	Lambda float64

	dim     int
	weights []float64 // last element is the bias
	scaler  featureScaler
}

// Name implements Classifier.
func (s *SVMClassifier) Name() string { return "svm" }

// Fit trains the model with the deterministic-order Pegasos schedule
// (cycling through examples), which keeps training reproducible without
// a seed parameter.
func (s *SVMClassifier) Fit(x [][]float64, y []bool) error {
	dim, err := checkXY(x, y)
	if err != nil {
		return fmt.Errorf("svm: %w", err)
	}
	s.dim = dim
	s.scaler = fitScaler(x)
	scaled := make([][]float64, len(x))
	for i, row := range x {
		scaled[i] = s.scaler.apply(row)
	}

	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lambda := s.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}

	w := make([]float64, dim+1)
	t := 1
	for e := 0; e < epochs; e++ {
		for i, row := range scaled {
			eta := 1 / (lambda * float64(t))
			t++
			yi := -1.0
			if y[i] {
				yi = 1
			}
			margin := yi * dotBias(w, row)
			for j := 0; j < dim; j++ {
				w[j] *= 1 - eta*lambda
			}
			if margin < 1 {
				for j, v := range row {
					w[j] += eta * yi * v
				}
				w[dim] += eta * yi
			}
		}
	}
	s.weights = w
	return nil
}

// Predict implements Classifier via the sign of the decision value.
func (s *SVMClassifier) Predict(x []float64) (bool, error) {
	if s.weights == nil {
		return false, ErrNotFitted
	}
	if len(x) != s.dim {
		return false, fmt.Errorf("svm: feature dim %d, want %d", len(x), s.dim)
	}
	return dotBias(s.weights, s.scaler.apply(x)) >= 0, nil
}

// LinearRegressor fits an independent ordinary-least-squares model (with
// intercept and a tiny ridge term for conditioning) per output dimension.
// For cross-camera box mapping this is the paper's "learnable homography"
// baseline.
type LinearRegressor struct {
	// Ridge is the L2 damping on the normal equations (default 1e-8).
	Ridge float64

	dim, out int
	coef     [][]float64 // out rows of dim+1 coefficients (bias last)
}

// Name implements Regressor.
func (l *LinearRegressor) Name() string { return "linear" }

// Fit solves one least-squares problem per output coordinate.
func (l *LinearRegressor) Fit(x [][]float64, y [][]float64) error {
	dim, out, err := checkXYReg(x, y)
	if err != nil {
		return fmt.Errorf("linear regressor: %w", err)
	}
	ridge := l.Ridge
	if ridge <= 0 {
		ridge = 1e-8
	}
	design := mat.NewDense(len(x), dim+1)
	for i, row := range x {
		for j, v := range row {
			design.Set(i, j, v)
		}
		design.Set(i, dim, 1)
	}
	coef := make([][]float64, out)
	rhs := make([]float64, len(x))
	for k := 0; k < out; k++ {
		for i := range y {
			rhs[i] = y[i][k]
		}
		c, err := mat.LeastSquares(design, rhs, ridge)
		if err != nil {
			return fmt.Errorf("linear regressor output %d: %w", k, err)
		}
		coef[k] = c
	}
	l.dim, l.out, l.coef = dim, out, coef
	return nil
}

// Predict implements Regressor.
func (l *LinearRegressor) Predict(x []float64) ([]float64, error) {
	if l.coef == nil {
		return nil, ErrNotFitted
	}
	if len(x) != l.dim {
		return nil, fmt.Errorf("linear regressor: feature dim %d, want %d", len(x), l.dim)
	}
	pred := make([]float64, l.out)
	for k, c := range l.coef {
		pred[k] = dotBias(c, x)
	}
	return pred, nil
}

// dotBias computes w[:len(x)] . x + w[len(x)] (the bias term).
func dotBias(w, x []float64) float64 {
	var sum float64
	for i, v := range x {
		sum += w[i] * v
	}
	return sum + w[len(x)]
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
