package shard

import (
	"reflect"
	"testing"
)

// chain builds a corridor-like graph: camera i overlaps i+1 only.
func chain(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestPartitionConnectedComponents(t *testing.T) {
	// Two islands: {0,1,2} chained, {3,4} chained, 5 isolated.
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	m, err := Partition(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	if !reflect.DeepEqual(m.Shards, want) {
		t.Fatalf("shards = %v, want %v", m.Shards, want)
	}
	if len(m.Boundary) != 0 {
		t.Fatalf("pure components must have no boundary, got %v", m.Boundary)
	}
	if m.MaxShardSize() != 3 {
		t.Fatalf("MaxShardSize = %d, want 3", m.MaxShardSize())
	}
}

func TestPartitionSingleCameraShards(t *testing.T) {
	// No overlaps at all: every camera is its own shard.
	m, err := Partition(NewGraph(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", m.NumShards())
	}
	for i, cams := range m.Shards {
		if len(cams) != 1 || cams[0] != i {
			t.Fatalf("shard %d = %v, want [%d]", i, cams, i)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionFullyConnectedOneShard(t *testing.T) {
	g := NewGraph(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(i, j)
		}
	}
	m, err := Partition(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 1 || len(m.Shards[0]) != 5 {
		t.Fatalf("fully connected graph must be one shard, got %v", m.Shards)
	}
}

func TestPartitionMaxShardSplit(t *testing.T) {
	// A 10-camera chain split at max size 4: chunks {0..3}, {4..7},
	// {8,9}; boundary edges exactly at the cuts (3-4 and 7-8).
	m, err := Partition(chain(10), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}}
	if !reflect.DeepEqual(m.Shards, want) {
		t.Fatalf("shards = %v, want %v", m.Shards, want)
	}
	wantB := []Edge{{A: 3, B: 4}, {A: 7, B: 8}}
	if !reflect.DeepEqual(m.Boundary, wantB) {
		t.Fatalf("boundary = %v, want %v", m.Boundary, wantB)
	}
	if got := m.BoundaryCameras(1); !reflect.DeepEqual(got, []int{4, 7}) {
		t.Fatalf("BoundaryCameras(1) = %v, want [4 7]", got)
	}
	// Shard 1's neighbors: foreign 3 overlaps local 4, foreign 8
	// overlaps local 7.
	if got := m.Neighbors(1); !reflect.DeepEqual(got, []Edge{{A: 3, B: 4}, {A: 8, B: 7}}) {
		t.Fatalf("Neighbors(1) = %v", got)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := chain(16)
	g.AddEdge(2, 9) // a long-range edge merging would-be chunks' components
	first, err := Partition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := Partition(g, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d: partition differs:\n%v\nvs\n%v", i, first, again)
		}
	}
}

func TestFromCoObservation(t *testing.T) {
	counts := [][]int{
		{0, 5, 0},
		{5, 0, 1},
		{0, 1, 0},
	}
	g, err := FromCoObservation(counts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatalf("threshold 2: want only edge (0,1), got %v", g.Adj)
	}
	g1, err := FromCoObservation(counts, 0) // defaults to 1
	if err != nil {
		t.Fatal(err)
	}
	if !g1.HasEdge(1, 2) {
		t.Fatal("threshold default: edge (1,2) missing")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	g := chain(6)
	m, err := ParseSpec("0,1,2|3,4|5", 6, g)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "0,1,2|3,4|5" {
		t.Fatalf("String = %q", m.String())
	}
	// The chain edges 2-3 and 4-5 cross the spec's cuts.
	wantB := []Edge{{A: 2, B: 3}, {A: 4, B: 5}}
	if !reflect.DeepEqual(m.Boundary, wantB) {
		t.Fatalf("boundary = %v, want %v", m.Boundary, wantB)
	}
	if _, err := ParseSpec("0,1|1,2", 3, nil); err == nil {
		t.Fatal("duplicate camera must fail")
	}
	if _, err := ParseSpec("0,1", 3, nil); err == nil {
		t.Fatal("missing camera must fail")
	}
	if _, err := ParseSpec("0,x", 2, nil); err == nil {
		t.Fatal("non-numeric camera must fail")
	}
}

func TestSingleAndLocal(t *testing.T) {
	m, err := Single(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 1 || m.MaxShardSize() != 3 {
		t.Fatalf("Single(3) = %v", m.Shards)
	}
	s, l, err := m.Local(2)
	if err != nil || s != 0 || l != 2 {
		t.Fatalf("Local(2) = (%d,%d,%v)", s, l, err)
	}
	if _, _, err := m.Local(3); err == nil {
		t.Fatal("out-of-range Local must fail")
	}
	if _, err := Single(0); err == nil {
		t.Fatal("Single(0) must fail")
	}
}

func TestValidateRejectsCorruptMaps(t *testing.T) {
	m := &Map{Shards: [][]int{{0}, {}}, ShardOf: []int{0}}
	if err := m.Validate(); err == nil {
		t.Fatal("empty shard must fail validation")
	}
	m = &Map{Shards: [][]int{{0, 0}}, ShardOf: []int{0}}
	if err := m.Validate(); err == nil {
		t.Fatal("duplicate member must fail validation")
	}
}
