// Package shard partitions a camera fleet into overlap groups — shards —
// so that no scheduling round barrier has to span the whole fleet.
//
// The paper's BALB central stage runs one global round per key frame:
// every camera reports, the scheduler associates and assigns, every
// camera waits. That is faithful at testbed scale (≤ 8 cameras) and
// hopeless at fleet scale, because both the barrier (one straggler
// stalls everyone) and the association (O(N²) camera pairs) touch every
// camera. The structural escape is that real coverage graphs are nearly
// block-diagonal: a corridor camera overlaps only its neighbours, a
// grid intersection overlaps its own cross-street cluster. Cameras
// that never co-observe an object never need to be in the same
// scheduling round.
//
// This package builds that decomposition:
//
//   - a Graph records which camera pairs overlap (can co-observe an
//     object), extracted either from a trained association model's
//     cell-coverage predictions (Model.OverlapAdjacency) or from
//     ground-truth co-observation counts (scene.Trace.CoObservation);
//   - Partition splits the fleet into the Graph's connected components,
//     subdividing any component larger than a configured maximum shard
//     size along the camera-index order (dense blobs get chunked, which
//     trades some boundary traffic for a bounded barrier);
//   - a Map is the resulting assignment of cameras to shards, with
//     lookups both ways (Shards, ShardOf) and the Boundary edge list —
//     the overlapping camera pairs that ended up in different shards,
//     which is exactly where cross-shard hand-off happens.
//
// Consumers: pipeline.Config.Sched.Shards runs one in-process central stage
// per shard; cluster.NewShardedScheduler runs one independent round
// loop (barrier, leases, dead broadcast) per shard with a boundary
// hand-off bus between them; core.NewShardedPolicy scopes the
// distributed stage's ownership decisions per shard.
//
// # Determinism
//
// Everything here is a pure function of its inputs: Partition visits
// cameras in ascending index order, components are numbered by their
// smallest member, and oversized components are split into
// ascending-index chunks. The same adjacency and the same MaxShard
// always produce the identical Map — which is what lets a sharded run
// promise "same seed + same shard map → same trace"
// (docs/ARCHITECTURE.md, determinism contract).
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Graph is an undirected overlap graph over the camera fleet: Adj[i][j]
// reports whether cameras i and j can co-observe an object (an edge).
// The diagonal is ignored. Build one with NewGraph and AddEdge, from
// assoc.(*Model).OverlapAdjacency, or from FromCoObservation.
type Graph struct {
	// Adj is the symmetric adjacency matrix. Adj[i][j] == Adj[j][i].
	Adj [][]bool
}

// NewGraph returns an edgeless graph over n cameras.
func NewGraph(n int) *Graph {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &Graph{Adj: adj}
}

// NumCameras returns the fleet size the graph covers.
func (g *Graph) NumCameras() int { return len(g.Adj) }

// AddEdge marks cameras a and b as overlapping. Self-edges and
// out-of-range indices are ignored.
func (g *Graph) AddEdge(a, b int) {
	if a == b || a < 0 || b < 0 || a >= len(g.Adj) || b >= len(g.Adj) {
		return
	}
	g.Adj[a][b] = true
	g.Adj[b][a] = true
}

// HasEdge reports whether cameras a and b overlap.
func (g *Graph) HasEdge(a, b int) bool {
	if a < 0 || b < 0 || a >= len(g.Adj) || b >= len(g.Adj) {
		return false
	}
	return g.Adj[a][b]
}

// FromAdjacency wraps a (possibly asymmetric) adjacency matrix as a
// Graph, symmetrizing it: a directed overlap prediction in either
// direction makes the unordered pair an edge. The matrix must be
// square.
func FromAdjacency(adj [][]bool) (*Graph, error) {
	n := len(adj)
	g := NewGraph(n)
	for i, row := range adj {
		if len(row) != n {
			return nil, fmt.Errorf("shard: adjacency row %d has %d entries for %d cameras", i, len(row), n)
		}
		for j, v := range row {
			if v {
				g.AddEdge(i, j)
			}
		}
	}
	return g, nil
}

// FromCoObservation builds the overlap graph from pairwise
// co-observation counts (e.g. scene.Trace.CoObservation): cameras i and
// j are connected when counts[i][j] >= minCount. minCount <= 0 defaults
// to 1 (any co-observation at all makes an edge).
func FromCoObservation(counts [][]int, minCount int) (*Graph, error) {
	if minCount <= 0 {
		minCount = 1
	}
	n := len(counts)
	g := NewGraph(n)
	for i, row := range counts {
		if len(row) != n {
			return nil, fmt.Errorf("shard: co-observation row %d has %d entries for %d cameras", i, len(row), n)
		}
		for j, c := range row {
			if i != j && c >= minCount {
				g.AddEdge(i, j)
			}
		}
	}
	return g, nil
}

// Edge is one overlapping camera pair that crosses a shard boundary:
// the pair can co-observe an object, but A and B were placed in
// different shards (a dense component was split, or the graph was
// overridden by an explicit spec). A < B always.
type Edge struct {
	// A, B are the overlapping cameras (global indices, A < B).
	A, B int
}

// Map is a partition of the camera fleet into shards. Build one with
// Partition or ParseSpec; the zero value is invalid.
type Map struct {
	// Shards lists each shard's cameras in ascending global index;
	// shards are ordered by their smallest member.
	Shards [][]int
	// ShardOf maps a global camera index to its shard.
	ShardOf []int
	// Boundary lists the overlap edges that cross shards, ascending by
	// (A, B). Empty when the partition follows the graph's connected
	// components exactly (no component was split).
	Boundary []Edge
}

// NumShards returns the shard count.
func (m *Map) NumShards() int { return len(m.Shards) }

// NumCameras returns the fleet size.
func (m *Map) NumCameras() int { return len(m.ShardOf) }

// Validate checks internal consistency: every camera in exactly one
// shard, shards non-empty and ascending, ShardOf matching.
func (m *Map) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: map has no shards")
	}
	seen := make([]bool, len(m.ShardOf))
	for si, cams := range m.Shards {
		if len(cams) == 0 {
			return fmt.Errorf("shard: shard %d is empty", si)
		}
		for k, c := range cams {
			if c < 0 || c >= len(m.ShardOf) {
				return fmt.Errorf("shard: shard %d camera %d out of range [0,%d)", si, c, len(m.ShardOf))
			}
			if seen[c] {
				return fmt.Errorf("shard: camera %d appears in two shards", c)
			}
			seen[c] = true
			if k > 0 && cams[k-1] >= c {
				return fmt.Errorf("shard: shard %d cameras not ascending", si)
			}
			if m.ShardOf[c] != si {
				return fmt.Errorf("shard: ShardOf[%d] = %d, want %d", c, m.ShardOf[c], si)
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			return fmt.Errorf("shard: camera %d in no shard", c)
		}
	}
	return nil
}

// MaxShardSize returns the largest shard's camera count — the widest
// round barrier any scheduler instance runs under this map.
func (m *Map) MaxShardSize() int {
	max := 0
	for _, cams := range m.Shards {
		if len(cams) > max {
			max = len(cams)
		}
	}
	return max
}

// Local returns camera cam's (shard, local index within the shard)
// pair, or an error for an out-of-range camera.
func (m *Map) Local(cam int) (shard, local int, err error) {
	if cam < 0 || cam >= len(m.ShardOf) {
		return 0, 0, fmt.Errorf("shard: camera %d out of range [0,%d)", cam, len(m.ShardOf))
	}
	s := m.ShardOf[cam]
	for k, c := range m.Shards[s] {
		if c == cam {
			return s, k, nil
		}
	}
	return 0, 0, fmt.Errorf("shard: inconsistent map: camera %d not in shard %d", cam, s)
}

// String renders the map as a spec string ("0,1,2|3,4"), parseable by
// ParseSpec.
func (m *Map) String() string {
	var b strings.Builder
	for si, cams := range m.Shards {
		if si > 0 {
			b.WriteByte('|')
		}
		for k, c := range cams {
			if k > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(c))
		}
	}
	return b.String()
}

// Partition splits the fleet into the overlap graph's connected
// components and subdivides any component larger than maxShard into
// ascending-index chunks of at most maxShard cameras. maxShard <= 0
// means unlimited (pure connected components). Component discovery,
// ordering, and splitting are all deterministic: shards are ordered by
// their smallest member, and the same inputs always produce the same
// Map. Boundary records every graph edge whose endpoints landed in
// different shards (only splits can create them).
func Partition(g *Graph, maxShard int) (*Map, error) {
	n := g.NumCameras()
	if n == 0 {
		return nil, fmt.Errorf("shard: empty graph")
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var components [][]int
	// BFS from each unvisited camera in ascending order: components come
	// out ordered by smallest member, members ascending (the queue only
	// ever holds ascending frontiers, but sort anyway for clarity).
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		id := len(components)
		queue := []int{start}
		comp[start] = id
		var members []int
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			members = append(members, c)
			for d := 0; d < n; d++ {
				if comp[d] == -1 && g.Adj[c][d] {
					comp[d] = id
					queue = append(queue, d)
				}
			}
		}
		sort.Ints(members)
		components = append(components, members)
	}

	m := &Map{ShardOf: make([]int, n)}
	for _, members := range components {
		if maxShard <= 0 || len(members) <= maxShard {
			m.addShard(members)
			continue
		}
		// Dense blob: chunk along the index order. Index order follows
		// physical placement in the corridor/grid generators, so chunks
		// cut the fewest overlap edges a blind split can.
		for off := 0; off < len(members); off += maxShard {
			end := off + maxShard
			if end > len(members) {
				end = len(members)
			}
			m.addShard(members[off:end])
		}
	}
	m.Boundary = boundaryEdges(g, m)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseSpec parses an explicit shard spec — shards separated by '|',
// cameras by ',' (e.g. "0,1,2|3,4,5") — against a fleet of numCams
// cameras. Every camera must appear exactly once. The graph, when
// non-nil, supplies the boundary edges; nil leaves Boundary empty.
func ParseSpec(spec string, numCams int, g *Graph) (*Map, error) {
	m := &Map{ShardOf: make([]int, numCams)}
	for i := range m.ShardOf {
		m.ShardOf[i] = -1
	}
	for _, part := range strings.Split(spec, "|") {
		var cams []int
		for _, tok := range strings.Split(part, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			c, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("shard: bad camera %q in spec: %v", tok, err)
			}
			cams = append(cams, c)
		}
		if len(cams) == 0 {
			return nil, fmt.Errorf("shard: empty shard in spec %q", spec)
		}
		sort.Ints(cams)
		m.addShard(cams)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if g != nil {
		if g.NumCameras() != numCams {
			return nil, fmt.Errorf("shard: graph covers %d cameras, spec expects %d", g.NumCameras(), numCams)
		}
		m.Boundary = boundaryEdges(g, m)
	}
	return m, nil
}

// Single returns the trivial one-shard map over n cameras — the legacy
// global-barrier deployment expressed in the sharded vocabulary.
func Single(n int) (*Map, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: fleet size %d", n)
	}
	cams := make([]int, n)
	for i := range cams {
		cams[i] = i
	}
	m := &Map{ShardOf: make([]int, n)}
	m.addShard(cams)
	return m, nil
}

func (m *Map) addShard(cams []int) {
	id := len(m.Shards)
	m.Shards = append(m.Shards, append([]int(nil), cams...))
	for _, c := range cams {
		if c >= 0 && c < len(m.ShardOf) {
			m.ShardOf[c] = id
		}
	}
}

// boundaryEdges lists the graph edges crossing shards, ascending.
func boundaryEdges(g *Graph, m *Map) []Edge {
	var out []Edge
	n := g.NumCameras()
	if n > len(m.ShardOf) {
		n = len(m.ShardOf)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if g.Adj[a][b] && m.ShardOf[a] != m.ShardOf[b] {
				out = append(out, Edge{A: a, B: b})
			}
		}
	}
	return out
}

// BoundaryCameras returns, ascending, the cameras of the given shard
// that sit on at least one boundary edge — the cameras whose reports
// must be published on the hand-off bus.
func (m *Map) BoundaryCameras(shard int) []int {
	set := map[int]bool{}
	for _, e := range m.Boundary {
		if m.ShardOf[e.A] == shard {
			set[e.A] = true
		}
		if m.ShardOf[e.B] == shard {
			set[e.B] = true
		}
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Neighbors returns, ascending, the foreign cameras connected to the
// given shard by a boundary edge, paired with the local camera each one
// overlaps: the digests a shard's scheduler must consult before
// assigning. Pairs are ordered by (foreign, local).
func (m *Map) Neighbors(shard int) []Edge {
	var out []Edge
	for _, e := range m.Boundary {
		switch {
		case m.ShardOf[e.A] == shard:
			out = append(out, Edge{A: e.B, B: e.A}) // foreign, local
		case m.ShardOf[e.B] == shard:
			out = append(out, Edge{A: e.A, B: e.B})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
