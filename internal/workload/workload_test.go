package workload

import (
	"testing"

	"mvs/internal/profile"
)

func TestAllScenariosValid(t *testing.T) {
	for _, s := range All(1) {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestTableIConfigurations(t *testing.T) {
	count := func(devs []profile.DeviceClass, c profile.DeviceClass) int {
		n := 0
		for _, d := range devs {
			if d == c {
				n++
			}
		}
		return n
	}
	s1 := S1(1)
	if len(s1.Devices) != 5 ||
		count(s1.Devices, profile.JetsonXavier) != 2 ||
		count(s1.Devices, profile.JetsonTX2) != 2 ||
		count(s1.Devices, profile.JetsonNano) != 1 {
		t.Errorf("S1 devices = %v", s1.Devices)
	}
	s2 := S2(1)
	if len(s2.Devices) != 2 ||
		count(s2.Devices, profile.JetsonXavier) != 1 ||
		count(s2.Devices, profile.JetsonNano) != 1 {
		t.Errorf("S2 devices = %v", s2.Devices)
	}
	s3 := S3(1)
	if len(s3.Devices) != 3 ||
		count(s3.Devices, profile.JetsonXavier) != 1 ||
		count(s3.Devices, profile.JetsonTX2) != 1 ||
		count(s3.Devices, profile.JetsonNano) != 1 {
		t.Errorf("S3 devices = %v", s3.Devices)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"S1", "S2", "S3"} {
		s, err := ByName(name, 1)
		if err != nil || s.Name != name {
			t.Errorf("ByName(%s) = %v, %v", name, s, err)
		}
	}
	if _, err := ByName("S9", 1); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestProfilesMatchDevices(t *testing.T) {
	s := S1(1)
	profs := s.Profiles()
	if len(profs) != len(s.Devices) {
		t.Fatalf("profiles = %d", len(profs))
	}
	for i, p := range profs {
		if p.Class != s.Devices[i] {
			t.Errorf("profile %d class %v != %v", i, p.Class, s.Devices[i])
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %d: %v", i, err)
		}
	}
}

func TestScenariosProduceTraffic(t *testing.T) {
	for _, s := range All(3) {
		trace, err := s.World.Run(600)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		total := 0
		for ci := range trace.Cameras {
			for fi := range trace.Frames {
				total += len(trace.Frames[fi].PerCamera[ci])
			}
		}
		if total == 0 {
			t.Errorf("%s: no observations", s.Name)
		}
	}
}

func TestOverlapOrdering(t *testing.T) {
	// Shared-object fraction must be highest in S1 and lowest in S3, the
	// structural property behind the paper's per-scenario speedup
	// ordering.
	frac := func(s *Scenario) float64 {
		trace, err := s.World.Run(1000)
		if err != nil {
			t.Fatal(err)
		}
		shared, total := 0, 0
		for fi := range trace.Frames {
			seen := map[int]int{}
			for _, obs := range trace.Frames[fi].PerCamera {
				for _, o := range obs {
					seen[o.ObjectID]++
				}
			}
			for _, n := range seen {
				total++
				if n > 1 {
					shared++
				}
			}
		}
		if total == 0 {
			t.Fatalf("%s: no visible objects", s.Name)
		}
		return float64(shared) / float64(total)
	}
	f1, f2, f3 := frac(S1(5)), frac(S2(5)), frac(S3(5))
	if !(f1 > f2 && f2 > f3) {
		t.Errorf("overlap fractions not ordered: S1=%.2f S2=%.2f S3=%.2f", f1, f2, f3)
	}
}

func TestValidateCatchesMismatch(t *testing.T) {
	s := S2(1)
	s.Devices = s.Devices[:1]
	if err := s.Validate(); err == nil {
		t.Error("device/camera mismatch accepted")
	}
	s = S2(1)
	s.World = nil
	if err := s.Validate(); err == nil {
		t.Error("nil world accepted")
	}
}

func TestS4ScaleScenario(t *testing.T) {
	s := S4(1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Devices) != 8 {
		t.Fatalf("devices = %d", len(s.Devices))
	}
	trace, err := s.World.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	// Chained overlap: a healthy share of visible objects must be seen by
	// at least two cameras.
	shared, total := 0, 0
	for fi := range trace.Frames {
		seen := map[int]int{}
		for _, obs := range trace.Frames[fi].PerCamera {
			for _, o := range obs {
				seen[o.ObjectID]++
			}
		}
		for _, n := range seen {
			total++
			if n > 1 {
				shared++
			}
		}
	}
	if total == 0 {
		t.Fatal("no visible objects")
	}
	if frac := float64(shared) / float64(total); frac < 0.2 {
		t.Fatalf("S4 overlap too small: %.2f", frac)
	}
	if _, err := ByName("S4", 1); err != nil {
		t.Fatal(err)
	}
}
