// Package workload defines the evaluation scenarios: the paper's three
// testbed deployments (Table I), rebuilt on the scene simulator, plus an
// eight-camera scale scenario beyond the paper:
//
//   - S1: five cameras around a signalized traffic intersection, with
//     periodic platooned traffic (2x Xavier, 2x TX2, 1x Nano);
//   - S2: two cameras at a residential roadside with sparse traffic
//     (1x Xavier, 1x Nano);
//   - S3: three cameras at a busy fork road (1x Xavier, 1x TX2, 1x Nano),
//     with smaller view overlaps than S1/S2;
//   - S4: an eight-camera boulevard chain for scale studies (extension).
package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mvs/internal/geom"
	"mvs/internal/profile"
	"mvs/internal/scene"
)

// Scenario bundles a simulated world with the per-camera hardware roster.
type Scenario struct {
	// Name is the scenario identifier (S1, S2, S3).
	Name string
	// Description summarizes the deployment.
	Description string
	// World generates the traffic and observations.
	World *scene.World
	// Devices lists each camera's hardware class, aligned with
	// World.Cameras (Table I).
	Devices []profile.DeviceClass
}

// Profiles returns the default latency profile of every camera.
func (s *Scenario) Profiles() []*profile.Profile {
	out := make([]*profile.Profile, len(s.Devices))
	for i, d := range s.Devices {
		out[i] = profile.Derived(d)
	}
	return out
}

// Validate checks the scenario wiring.
func (s *Scenario) Validate() error {
	if s.World == nil {
		return fmt.Errorf("workload: %s has nil world", s.Name)
	}
	if err := s.World.Validate(); err != nil {
		return fmt.Errorf("workload: %s: %w", s.Name, err)
	}
	if len(s.Devices) != len(s.World.Cameras) {
		return fmt.Errorf("workload: %s has %d devices for %d cameras",
			s.Name, len(s.Devices), len(s.World.Cameras))
	}
	return nil
}

// standard camera factory: an 8 m pole mount with a 0.4 rad down-tilt,
// which sees a ground band from roughly 6 m to 65 m ahead.
func cam(name string, pos geom.Point, yaw float64) *scene.Camera {
	return &scene.Camera{
		Name: name, Pos: pos, Height: 8, Yaw: yaw,
		Pitch: 0.4, Focal: 560, ImageW: 1280, ImageH: 704,
		MaxRange: 68,
	}
}

// fisheye is the wider, shorter-range camera S1 includes (the AIC21
// fisheye unit uses a 1280x960 sensor).
func fisheye(name string, pos geom.Point, yaw float64) *scene.Camera {
	return &scene.Camera{
		Name: name, Pos: pos, Height: 7, Yaw: yaw,
		Pitch: 0.5, Focal: 520, ImageW: 1280, ImageH: 960,
		MaxRange: 45,
	}
}

// S1 is the signalized intersection: four through-routes gated by a
// 40-second light cycle, five cameras facing the intersection from four
// sides plus a fisheye overview. Traffic platoons give the bursty,
// phase-shifted per-camera load of the paper's Fig. 2.
func S1(seed int64) *Scenario {
	const arm = 60.0
	northSouth := scene.MustPath(geom.Point{X: 2, Y: arm}, geom.Point{X: 2, Y: -arm})
	southNorth := scene.MustPath(geom.Point{X: -2, Y: -arm}, geom.Point{X: -2, Y: arm})
	eastWest := scene.MustPath(geom.Point{X: arm, Y: -2}, geom.Point{X: -arm, Y: -2})
	westEast := scene.MustPath(geom.Point{X: -arm, Y: 2}, geom.Point{X: arm, Y: 2})

	const cycle = 40.0
	nsGreen := scene.TrafficLight{RatePerSec: 0.45, PeriodSec: cycle, GreenStartSec: 0, GreenDurSec: 14}
	ewGreen := scene.TrafficLight{RatePerSec: 0.45, PeriodSec: cycle, GreenStartSec: 20, GreenDurSec: 14}

	world := &scene.World{
		Routes: []scene.Route{
			{Path: northSouth, Speed: 9, Arrivals: nsGreen},
			{Path: southNorth, Speed: 9, Arrivals: nsGreen},
			{Path: eastWest, Speed: 9, Arrivals: ewGreen},
			{Path: westEast, Speed: 9, Arrivals: ewGreen},
		},
		Cameras: []*scene.Camera{
			cam("s1-east", geom.Point{X: 40, Y: 0}, math.Pi),     // looks west
			cam("s1-west", geom.Point{X: -40, Y: 0}, 0),          // looks east
			cam("s1-north", geom.Point{X: 0, Y: 40}, -math.Pi/2), // looks south
			cam("s1-south", geom.Point{X: 0, Y: -40}, math.Pi/2), // looks north
			fisheye("s1-fisheye", geom.Point{X: -25, Y: 25}, -math.Pi/4),
		},
		FPS:  10,
		Seed: seed,
	}
	return &Scenario{
		Name:        "S1",
		Description: "signalized intersection, 5 cameras (2x Xavier, 2x TX2, 1x Nano)",
		World:       world,
		Devices: []profile.DeviceClass{
			profile.JetsonXavier, profile.JetsonXavier,
			profile.JetsonTX2, profile.JetsonTX2,
			profile.JetsonNano,
		},
	}
}

// S2 is the sparse residential roadside: one straight road, two cameras
// facing each other along it with a co-visible middle stretch.
func S2(seed int64) *Scenario {
	road := scene.MustPath(geom.Point{X: -70, Y: 4}, geom.Point{X: 70, Y: 4})
	reverse := scene.MustPath(geom.Point{X: 70, Y: -4}, geom.Point{X: -70, Y: -4})
	world := &scene.World{
		Routes: []scene.Route{
			{Path: road, Speed: 7, Arrivals: scene.Poisson{RatePerSec: 0.12}},
			{Path: reverse, Speed: 7, Arrivals: scene.Poisson{RatePerSec: 0.10}},
		},
		Cameras: []*scene.Camera{
			cam("s2-west", geom.Point{X: -35, Y: -8}, 0.12),
			cam("s2-east", geom.Point{X: 35, Y: 12}, math.Pi-0.12),
		},
		FPS:  10,
		Seed: seed,
	}
	return &Scenario{
		Name:        "S2",
		Description: "sparse residential roadside, 2 cameras (1x Xavier, 1x Nano)",
		World:       world,
		Devices:     []profile.DeviceClass{profile.JetsonXavier, profile.JetsonNano},
	}
}

// S3 is the busy fork: a main road splitting into two branches, two
// cameras monitoring the fork and one facing the roadside. Overlaps are
// smaller than S1/S2, so cross-camera sharing helps less (the paper's
// smallest speedup).
func S3(seed int64) *Scenario {
	forkLeft := scene.MustPath(
		geom.Point{X: 0, Y: -65}, geom.Point{X: 0, Y: -10},
		geom.Point{X: -30, Y: 45})
	forkRight := scene.MustPath(
		geom.Point{X: 4, Y: -65}, geom.Point{X: 4, Y: -10},
		geom.Point{X: 34, Y: 45})
	side := scene.MustPath(geom.Point{X: -55, Y: -30}, geom.Point{X: 55, Y: -34})

	world := &scene.World{
		Routes: []scene.Route{
			{Path: forkLeft, Speed: 8, Arrivals: scene.Poisson{RatePerSec: 0.35}},
			{Path: forkRight, Speed: 8, Arrivals: scene.Poisson{RatePerSec: 0.35}},
			{Path: side, Speed: 8, Arrivals: scene.Poisson{RatePerSec: 0.30}},
		},
		Cameras: []*scene.Camera{
			cam("s3-fork-w", geom.Point{X: -28, Y: 30}, -1.15),       // left branch, fork, upper main road
			cam("s3-fork-e", geom.Point{X: 32, Y: 30}, math.Pi+1.15), // right branch, fork, upper main road
			cam("s3-side", geom.Point{X: 0, Y: -55}, math.Pi/2),      // watches the side road and lower main road
		},
		FPS:  10,
		Seed: seed,
	}
	return &Scenario{
		Name:        "S3",
		Description: "busy fork road, 3 cameras (1x Xavier, 1x TX2, 1x Nano)",
		World:       world,
		Devices: []profile.DeviceClass{
			profile.JetsonXavier, profile.JetsonTX2, profile.JetsonNano,
		},
	}
}

// S4 is a scale scenario beyond the paper's testbed: a long boulevard
// monitored by eight cameras in an overlapping chain (alternating sides
// of the road), with device classes cycling through the fleet. It
// exercises the central stage, association, and masks at larger M, and
// is used by the scale benchmarks.
func S4(seed int64) *Scenario {
	const length = 260.0
	east := scene.MustPath(geom.Point{X: -length / 2, Y: 4}, geom.Point{X: length / 2, Y: 4})
	west := scene.MustPath(geom.Point{X: length / 2, Y: -4}, geom.Point{X: -length / 2, Y: -4})

	var cameras []*scene.Camera
	var devices []profile.DeviceClass
	classes := []profile.DeviceClass{
		profile.JetsonXavier, profile.JetsonTX2, profile.JetsonNano,
	}
	for i := 0; i < 8; i++ {
		x := -length/2 + 20 + float64(i)*32
		if i%2 == 0 {
			cameras = append(cameras, cam(fmt.Sprintf("s4-n%d", i), geom.Point{X: x, Y: 16}, -0.35))
		} else {
			cameras = append(cameras, cam(fmt.Sprintf("s4-s%d", i), geom.Point{X: x, Y: -16}, 0.35))
		}
		devices = append(devices, classes[i%len(classes)])
	}
	world := &scene.World{
		Routes: []scene.Route{
			{Path: east, Speed: 9, Arrivals: scene.Poisson{RatePerSec: 0.5}},
			{Path: west, Speed: 9, Arrivals: scene.Poisson{RatePerSec: 0.5}},
		},
		Cameras: cameras,
		FPS:     10,
		Seed:    seed,
	}
	return &Scenario{
		Name:        "S4",
		Description: "scale study: 260 m boulevard, 8 cameras in an overlapping chain",
		World:       world,
		Devices:     devices,
	}
}

// Corridor generalizes S4 to n cameras: a straight boulevard of
// 32 m camera spacing, cameras alternating sides in an overlapping
// chain, device classes cycling Xavier/TX2/Nano. Its coverage graph is
// the nearly block-diagonal shape sharding exploits — each camera
// overlaps only a few neighbours — so it is the canonical input for
// the 64-camera sharded-vs-global comparisons (docs/SCALING.md §3).
// n must be at least 2.
func Corridor(n int, seed int64) (*Scenario, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: corridor needs at least 2 cameras, got %d", n)
	}
	length := float64(n)*32 + 16
	east := scene.MustPath(geom.Point{X: -length / 2, Y: 4}, geom.Point{X: length / 2, Y: 4})
	west := scene.MustPath(geom.Point{X: length / 2, Y: -4}, geom.Point{X: -length / 2, Y: -4})

	var cameras []*scene.Camera
	var devices []profile.DeviceClass
	classes := []profile.DeviceClass{
		profile.JetsonXavier, profile.JetsonTX2, profile.JetsonNano,
	}
	for i := 0; i < n; i++ {
		x := -length/2 + 20 + float64(i)*32
		if i%2 == 0 {
			cameras = append(cameras, cam(fmt.Sprintf("c%d-n", i), geom.Point{X: x, Y: 16}, -0.35))
		} else {
			cameras = append(cameras, cam(fmt.Sprintf("c%d-s", i), geom.Point{X: x, Y: -16}, 0.35))
		}
		devices = append(devices, classes[i%len(classes)])
	}
	world := &scene.World{
		Routes: []scene.Route{
			{Path: east, Speed: 9, Arrivals: scene.Poisson{RatePerSec: 0.5}},
			{Path: west, Speed: 9, Arrivals: scene.Poisson{RatePerSec: 0.5}},
		},
		Cameras: cameras,
		FPS:     10,
		Seed:    seed,
	}
	return &Scenario{
		Name:        fmt.Sprintf("C%d", n),
		Description: fmt.Sprintf("scale corridor: %.0f m boulevard, %d cameras in an overlapping chain", length, n),
		World:       world,
		Devices:     devices,
	}, nil
}

// Islands builds k disjoint corridor deployments of per cameras each,
// offset 500 m apart so no camera pair across islands can ever
// co-observe an object and no route crosses islands. The coverage
// graph is exactly block-diagonal, which makes Islands the reference
// scenario for the sharded-equals-global determinism tests: a shard
// map with one shard per island has zero cross-shard traffic by
// construction. Camera indices are island-major (island 0's cameras
// first), matching shard.Partition's component order.
func Islands(k, per int, seed int64) (*Scenario, error) {
	if k < 1 || per < 2 {
		return nil, fmt.Errorf("workload: islands needs k >= 1 and per >= 2, got k=%d per=%d", k, per)
	}
	length := float64(per)*32 + 16
	var cameras []*scene.Camera
	var devices []profile.DeviceClass
	var routes []scene.Route
	classes := []profile.DeviceClass{
		profile.JetsonXavier, profile.JetsonTX2, profile.JetsonNano,
	}
	for is := 0; is < k; is++ {
		y := float64(is) * 500
		routes = append(routes,
			scene.Route{
				Path:  scene.MustPath(geom.Point{X: -length / 2, Y: y + 4}, geom.Point{X: length / 2, Y: y + 4}),
				Speed: 9, Arrivals: scene.Poisson{RatePerSec: 0.5},
			},
			scene.Route{
				Path:  scene.MustPath(geom.Point{X: length / 2, Y: y - 4}, geom.Point{X: -length / 2, Y: y - 4}),
				Speed: 9, Arrivals: scene.Poisson{RatePerSec: 0.5},
			},
		)
		for i := 0; i < per; i++ {
			x := -length/2 + 20 + float64(i)*32
			idx := is*per + i
			if i%2 == 0 {
				cameras = append(cameras, cam(fmt.Sprintf("i%d-c%d-n", is, i), geom.Point{X: x, Y: y + 16}, -0.35))
			} else {
				cameras = append(cameras, cam(fmt.Sprintf("i%d-c%d-s", is, i), geom.Point{X: x, Y: y - 16}, 0.35))
			}
			devices = append(devices, classes[idx%len(classes)])
		}
	}
	world := &scene.World{
		Routes:  routes,
		Cameras: cameras,
		FPS:     10,
		Seed:    seed,
	}
	return &Scenario{
		Name:        fmt.Sprintf("I%dx%d", k, per),
		Description: fmt.Sprintf("%d disjoint corridors of %d cameras each (block-diagonal coverage)", k, per),
		World:       world,
		Devices:     devices,
	}, nil
}

// ByName returns the named scenario (case-sensitive): S1, S2, S3, the
// extension scale scenario S4, or "C<n>" for an n-camera Corridor
// (e.g. C64).
func ByName(name string, seed int64) (*Scenario, error) {
	switch name {
	case "S1":
		return S1(seed), nil
	case "S2":
		return S2(seed), nil
	case "S3":
		return S3(seed), nil
	case "S4":
		return S4(seed), nil
	}
	if strings.HasPrefix(name, "C") {
		if n, err := strconv.Atoi(name[1:]); err == nil {
			return Corridor(n, seed)
		}
	}
	return nil, fmt.Errorf("workload: unknown scenario %q (want S1, S2, S3, S4, or C<n>)", name)
}

// All returns the three scenarios with the given seed.
func All(seed int64) []*Scenario {
	return []*Scenario{S1(seed), S2(seed), S3(seed)}
}
