package node

import (
	"net"
	"sync"
	"testing"
	"time"

	"mvs/internal/assoc"
	"mvs/internal/cluster"
	"mvs/internal/faults"
	"mvs/internal/geom"
	"mvs/internal/metrics"
	"mvs/internal/profile"
	"mvs/internal/scene"
)

func TestDegradedModeCountsAndClears(t *testing.T) {
	// Degraded mode is scheduler-autonomous operation: the node keeps
	// inspecting all its own tracks under the last-known policy. Frames
	// in that mode are counted; the next applied assignment clears it.
	world := twoCamWorld(3)
	trace, err := world.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	sink := metrics.NewChannelSink(1, len(trace.Frames)+1)
	cfg := baseConfig(0)
	cfg.Sink = sink
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Degraded() {
		t.Fatal("fresh runtime already degraded")
	}

	for fi := range trace.Frames {
		obs := trace.Frames[fi].PerCamera[0]
		if fi%10 == 0 {
			reports, err := rt.KeyFrame(obs)
			if err != nil {
				t.Fatal(err)
			}
			if fi < 20 {
				// Scheduler unreachable for the first two horizons.
				rt.EnterDegraded()
				continue
			}
			keep := make([]int, len(reports))
			for i, r := range reports {
				keep[i] = r.TrackID
			}
			if err := rt.ApplyAssignment(&cluster.Assignment{Frame: fi, Keep: keep, Priority: []int{0, 1}}); err != nil {
				t.Fatal(err)
			}
			if rt.Degraded() {
				t.Fatal("ApplyAssignment did not clear degraded mode")
			}
		} else if _, err := rt.RegularFrame(obs); err != nil {
			t.Fatal(err)
		}
	}
	rt.NoteReconnects(2)
	rt.NoteReconnects(1) // monotone: lower value ignored

	st := rt.Stats()
	if st.Frames != 40 {
		t.Fatalf("frames = %d", st.Frames)
	}
	// Frames 1..20 ran degraded: key frame 0 finished before the first
	// EnterDegraded, and frame 20's key frame still ran degraded before
	// its assignment cleared the mode.
	if st.DegradedFrames != 20 {
		t.Fatalf("degraded frames = %d, want 20", st.DegradedFrames)
	}
	if st.Reconnects != 2 {
		t.Fatalf("reconnects = %d, want 2", st.Reconnects)
	}

	sink.Close()
	var last metrics.Snapshot
	for snap := range sink.Snapshots() {
		last = snap
	}
	if last.DegradedFrames != 20 {
		t.Fatalf("final snapshot degraded_frames = %d, want 20", last.DegradedFrames)
	}
}

// TestChaosDegradedRejoinEndToEnd is the full-stack chaos run: two node
// runtimes drive a real scheduler over loopback TCP through reconnecting
// clients whose connections are deterministically killed every few
// writes. Every node must finish its trace — degraded when a round gets
// no assignment, rejoining when one does — the scheduler must never
// deadlock (round timeouts bound every barrier), and the fault counters
// must surface in the nodes' sink snapshots. Run under -race by CI's
// chaos smoke step.
func TestChaosDegradedRejoinEndToEnd(t *testing.T) {
	world := twoCamWorld(5)
	trace, err := world.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	train, test := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{})
	if err != nil {
		t.Fatal(err)
	}
	profiles := []*profile.Profile{
		profile.Derived(profile.JetsonXavier),
		profile.Derived(profile.JetsonNano),
	}
	sched, err := cluster.NewScheduler(model, profiles, 0,
		cluster.WithRoundTimeout(250*time.Millisecond),
		cluster.WithLease(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = sched.Serve(ln) }()
	defer func() {
		sched.Close()
		ln.Close()
	}()

	// Deterministic chaos: handshakes succeed (grace), then every 5th
	// write kills the client's connection.
	inj := faults.New(faults.Config{Seed: 23, Grace: 2, WriteCut: 5})

	type camResult struct {
		err      error
		detected map[int]bool
		stats    Stats
		last     metrics.Snapshot
	}
	runCam := func(cam int, res *camResult, wg *sync.WaitGroup) {
		defer wg.Done()
		sc := world.Cameras[cam]
		client := cluster.NewReconnectClient(cluster.ReconnectConfig{
			Addr: ln.Addr().String(), Camera: cam,
			FrameW: sc.ImageW, FrameH: sc.ImageH,
			DialTimeout: 2 * time.Second,
			IOTimeout:   2 * time.Second,
			Backoff:     cluster.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: int64(cam)},
			MaxAttempts: 6,
			Dial:        cluster.DialFunc(inj.Dialer(nil)),
		})
		defer client.Close()
		if err := client.Connect(); err != nil {
			res.err = err
			return
		}
		ack := client.Ack()
		sink := metrics.NewChannelSink(1, len(test.Frames)+1)
		rt, err := New(Config{
			Camera: cam, Frame: sc.Frame(), Profile: profiles[cam],
			GridCols: ack.GridCols, GridRows: ack.GridRows, Coverage: ack.Coverage,
			NumCameras: 2, Seed: 4, Sink: sink,
		})
		if err != nil {
			res.err = err
			return
		}
		for fi := range test.Frames {
			obs := test.Frames[fi].PerCamera[cam]
			if fi%10 == 0 {
				reports, err := rt.KeyFrame(obs)
				if err != nil {
					res.err = err
					return
				}
				a, err := client.KeyFrame(fi, reports, 2*time.Second)
				if err != nil {
					// No guidance this round: keep going autonomously.
					rt.EnterDegraded()
					continue
				}
				rt.NoteReconnects(client.Reconnects())
				if err := rt.ApplyAssignment(a); err != nil {
					res.err = err
					return
				}
			} else if _, err := rt.RegularFrame(obs); err != nil {
				res.err = err
				return
			}
		}
		res.detected = rt.DetectedIDs()
		res.stats = rt.Stats()
		sink.Close()
		for snap := range sink.Snapshots() {
			res.last = snap
		}
	}

	var wg sync.WaitGroup
	var r0, r1 camResult
	wg.Add(2)
	go runCam(0, &r0, &wg)
	go runCam(1, &r1, &wg)
	wg.Wait()
	if r0.err != nil || r1.err != nil {
		t.Fatalf("node errors: %v / %v", r0.err, r1.err)
	}

	// The chaos schedule actually fired, and the clients recovered.
	if inj.Faults() == 0 {
		t.Fatal("no faults injected")
	}
	if r0.stats.Reconnects+r1.stats.Reconnects == 0 {
		t.Fatal("no reconnects recorded despite injected kills")
	}
	// Every node processed its whole trace, degraded or not.
	for i, r := range []camResult{r0, r1} {
		if r.stats.Frames != len(test.Frames) {
			t.Fatalf("camera %d processed %d/%d frames", i, r.stats.Frames, len(test.Frames))
		}
		// Counters flow into the snapshot stream.
		if r.last.Reconnects != r.stats.Reconnects {
			t.Fatalf("camera %d: snapshot reconnects %d != stats %d", i, r.last.Reconnects, r.stats.Reconnects)
		}
		if r.last.DegradedFrames != r.stats.DegradedFrames {
			t.Fatalf("camera %d: snapshot degraded %d != stats %d", i, r.last.DegradedFrames, r.stats.DegradedFrames)
		}
	}

	// Recall floor: even under faults the two nodes together must see
	// most ground-truth objects — degraded mode keeps them inspecting.
	truth := make(map[int]bool)
	for fi := range test.Frames {
		for id := range test.Frames[fi].VisibleObjectIDs() {
			truth[id] = true
		}
	}
	if len(truth) == 0 {
		t.Skip("no objects in test half")
	}
	missed := 0
	for id := range truth {
		if !r0.detected[id] && !r1.detected[id] {
			missed++
		}
	}
	if frac := float64(missed) / float64(len(truth)); frac > 0.3 {
		t.Fatalf("missed %d/%d distinct objects under chaos", missed, len(truth))
	}
}

// TestChaosDeadOwnerFailover exercises the data-plane failover rule on
// a node: the scheduler declares the owning camera dead, so the
// highest-priority live camera promotes its shadow back to an active
// track and counts the reassignment.
func TestChaosDeadOwnerFailover(t *testing.T) {
	cfg := baseConfig(0)
	cfg.Coverage = make([][]int, 16*9)
	for i := range cfg.Coverage {
		cfg.Coverage[i] = []int{0, 1} // every cell seen by both cameras
	}
	sink := metrics.NewChannelSink(1, 16)
	cfg.Sink = sink
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := []scene.Observation{
		{ObjectID: 1, Box: geom.Rect{MinX: 100, MinY: 100, MaxX: 160, MaxY: 150}},
	}
	reports, err := rt.KeyFrame(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
	// The scheduler assigned the object to camera 1 — and in the same
	// reply declares camera 1 dead (its lease expired mid-round).
	err = rt.ApplyAssignment(&cluster.Assignment{
		Frame:    0,
		Shadows:  []cluster.ShadowOrder{{TrackID: reports[0].TrackID, AssignedCamera: 1}},
		Priority: []int{1, 0},
		Dead:     []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.ActiveTracks != 0 || st.Shadows != 1 {
		t.Fatalf("after demotion: %+v", st)
	}
	if _, err := rt.RegularFrame(obs); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.ActiveTracks != 1 || st.Shadows != 0 {
		t.Fatalf("shadow not promoted from dead owner: %+v", st)
	}
	if st.Reassignments != 1 {
		t.Fatalf("Reassignments = %d, want 1", st.Reassignments)
	}
	// Outage accounting and snapshot plumbing.
	rt.OutageFrame()
	if got := rt.Stats().OutageFrames; got != 1 {
		t.Fatalf("OutageFrames = %d, want 1", got)
	}
	if _, err := rt.RegularFrame(obs); err != nil {
		t.Fatal(err)
	}
	sink.Close()
	var last metrics.Snapshot
	for snap := range sink.Snapshots() {
		last = snap
	}
	if last.OutageFrames != 1 || last.Reassignments != 1 {
		t.Fatalf("snapshot counters = (%d,%d), want (1,1)",
			last.OutageFrames, last.Reassignments)
	}
}

// TestChaosDeadSetIgnoredWhenAlive pins that an assignment without a
// Dead list clears any previous dead marks (a recovered camera regains
// ownership) and that out-of-range entries are ignored.
func TestChaosDeadSetIgnoredWhenAlive(t *testing.T) {
	cfg := baseConfig(0)
	cfg.Coverage = make([][]int, 16*9)
	for i := range cfg.Coverage {
		cfg.Coverage[i] = []int{0, 1}
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := []scene.Observation{
		{ObjectID: 1, Box: geom.Rect{MinX: 100, MinY: 100, MaxX: 160, MaxY: 150}},
	}
	reports, err := rt.KeyFrame(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range dead entries must not panic or mark anything.
	err = rt.ApplyAssignment(&cluster.Assignment{
		Frame:    0,
		Shadows:  []cluster.ShadowOrder{{TrackID: reports[0].TrackID, AssignedCamera: 1}},
		Priority: []int{1, 0},
		Dead:     []int{-3, 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RegularFrame(obs); err != nil {
		t.Fatal(err)
	}
	// Owner 1 is alive (garbage dead entries ignored): the shadow stays
	// a shadow and nothing is reassigned.
	st := rt.Stats()
	if st.Shadows != 1 || st.Reassignments != 0 {
		t.Fatalf("garbage dead entries changed behaviour: %+v", st)
	}
}
