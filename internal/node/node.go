// Package node implements a camera node's runtime for the distributed
// deployment: the local half of the BALB framework (tracking-based
// slicing, batched partial inspection, and the distributed stage) driven
// by assignments received from the central scheduler over the cluster
// protocol.
//
// The in-process pipeline package simulates the same logic for
// evaluation; this package is the deployable flavour, consuming wire
// messages instead of direct function calls.
package node

import (
	"fmt"
	"time"

	"mvs/internal/adapt"
	"mvs/internal/cluster"
	"mvs/internal/core"
	"mvs/internal/flow"
	"mvs/internal/geom"
	"mvs/internal/gpu"
	"mvs/internal/metrics"
	"mvs/internal/profile"
	"mvs/internal/scene"
	"mvs/internal/vision"
)

// shadow mirrors pipeline's shadow: an object assigned to another camera,
// coasting on its key-frame velocity.
type shadow struct {
	box      geom.Rect
	vel      geom.Point
	truthID  int
	assigned int
	size     int
}

// Runtime is one camera node's state.
type Runtime struct {
	camera   int
	frame    geom.Rect
	exec     *gpu.Executor
	det      *vision.Detector
	tracker  *flow.Tracker
	grid     geom.Grid
	coverage [][]int
	policy   *core.DistributedPolicy
	shadows  []*shadow
	sink     metrics.Sink
	label    string

	// Degraded mode: true while the node operates without scheduler
	// guidance (see EnterDegraded).
	degraded bool

	// adaptLevel is the degradation-ladder rung carried by the last
	// applied assignment (scheduler-side WithAdapt): the tracker's size
	// cap follows it, and the node's drive loop stretches its key-frame
	// cadence by adapt.StretchFor(adaptLevel). adaptTransitions counts
	// the level changes this node has applied.
	adaptLevel       int
	adaptTransitions int

	// Stats.
	frames         int
	latencySum     time.Duration
	detected       map[int]bool
	degradedFrames int
	reconnects     int
	outageFrames   int
	reassignments  int
}

// Config assembles a runtime.
type Config struct {
	// Camera is the node's index.
	Camera int
	// Frame is the camera's pixel frame.
	Frame geom.Rect
	// Profile is the node's device profile.
	Profile *profile.Profile
	// GridCols, GridRows and Coverage come from the scheduler's
	// registration ack.
	GridCols, GridRows int
	Coverage           [][]int
	// NumCameras sizes the default priority order used before the first
	// assignment arrives.
	NumCameras int
	// Seed drives detector noise.
	Seed int64
	// Detector tunes the simulated DNN.
	Detector vision.Config
	// Sink, when non-nil, receives one metrics.Snapshot per processed
	// frame (SourceNode): this camera's modelled latency, batch
	// occupancy, and track/shadow/detected counts. The node cannot score
	// recall — it never sees the cross-camera truth denominator — so the
	// recall fields stay zero.
	Sink metrics.Sink
}

// New builds a camera runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.Frame.Empty() {
		return nil, fmt.Errorf("node: empty camera frame")
	}
	if cfg.NumCameras <= 0 {
		return nil, fmt.Errorf("node: NumCameras must be positive")
	}
	exec, err := gpu.NewExecutor(cfg.Profile)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	tracker, err := flow.NewTracker(cfg.Frame, flow.Config{})
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	grid := geom.NewGrid(cfg.Frame, max(cfg.GridCols, 1), max(cfg.GridRows, 1))
	if len(cfg.Coverage) > 0 && len(cfg.Coverage) != grid.NumCells() {
		return nil, fmt.Errorf("node: coverage has %d cells, grid has %d", len(cfg.Coverage), grid.NumCells())
	}
	idx := make([]int, cfg.NumCameras)
	for i := range idx {
		idx[i] = i
	}
	policy, err := core.NewDistributedPolicy(idx)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	return &Runtime{
		camera:   cfg.Camera,
		frame:    cfg.Frame,
		exec:     exec,
		det:      vision.NewDetector(cfg.Seed+int64(cfg.Camera)*101, cfg.Detector),
		tracker:  tracker,
		grid:     grid,
		coverage: cfg.Coverage,
		policy:   policy,
		sink:     cfg.Sink,
		label:    fmt.Sprintf("camera%d", cfg.Camera),
		detected: make(map[int]bool),
	}, nil
}

// emit records this frame's snapshot, if a sink is attached. frames has
// already been incremented, so the zero-based frame index is frames-1.
func (r *Runtime) emit(latency time.Duration, batches, images int, occupancy float64) {
	if r.sink == nil {
		return
	}
	fi := r.frames - 1
	r.sink.RecordFrame(metrics.Snapshot{
		Source:           metrics.SourceNode,
		Label:            r.label,
		Seq:              fi,
		Frame:            fi,
		Detected:         len(r.detected),
		DegradedFrames:   r.degradedFrames,
		Reconnects:       r.reconnects,
		OutageFrames:     r.outageFrames,
		Reassignments:    r.reassignments,
		AdaptLevel:       r.adaptLevel,
		AdaptTransitions: r.adaptTransitions,
		FrameLatency:     latency,
		Cameras: []metrics.CameraSnapshot{{
			Camera:         r.camera,
			Latency:        latency,
			Batches:        batches,
			Images:         images,
			BatchOccupancy: occupancy,
			Tracks:         r.tracker.Len(),
			Shadows:        len(r.shadows),
		}},
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// KeyFrame runs the full-frame inspection and returns the track reports
// to upload. The caller sends them to the scheduler and feeds the reply
// to ApplyAssignment.
func (r *Runtime) KeyFrame(obs []scene.Observation) ([]cluster.TrackReport, error) {
	lat := r.exec.RunFullFrame()
	r.latencySum += lat
	r.frames++
	if r.degraded {
		r.degradedFrames++
	}
	dets := r.det.DetectFull(obs)
	for _, d := range dets {
		r.detected[d.TruthID] = true
	}
	if _, err := r.tracker.Update(dets); err != nil {
		return nil, fmt.Errorf("node: key-frame tracking: %w", err)
	}
	r.tracker.RefreshSizes()
	r.shadows = r.shadows[:0]
	r.emit(lat, 0, 0, 0) // full-frame inspection launches no partial batches
	return cluster.ReportTracks(r.tracker.Tracks()), nil
}

// OutageFrame records one frame lost to a camera fault: the node's
// sensor was down, so nothing was inspected, nothing was reported, and
// no snapshot is emitted — the camera is silent, which is exactly what
// the scheduler's liveness lease observes. State freezes until the
// camera recovers.
func (r *Runtime) OutageFrame() { r.outageFrames++ }

// EnterDegraded switches the runtime to degraded mode: the scheduler is
// unreachable (or did not answer this round), so the node keeps
// inspecting all of its own tracks under the last-known priority order
// and cell masks. Frames processed while degraded are counted in
// Stats.DegradedFrames and the per-frame snapshots. The next successful
// ApplyAssignment rejoins the cluster seamlessly.
func (r *Runtime) EnterDegraded() { r.degraded = true }

// Degraded reports whether the runtime is currently in degraded mode.
func (r *Runtime) Degraded() bool { return r.degraded }

// AdaptLevel returns the degradation-ladder rung the last applied
// assignment carried (0 when the scheduler runs no adapt controller).
// The drive loop stretches its key-frame cadence by
// adapt.StretchFor(AdaptLevel()); the tracker's size cap is already
// applied by ApplyAssignment.
func (r *Runtime) AdaptLevel() int { return r.adaptLevel }

// NoteReconnects records the client's cumulative reconnect count so it
// flows into this node's snapshots and stats. Monotone: lower values
// are ignored.
func (r *Runtime) NoteReconnects(n int) {
	if n > r.reconnects {
		r.reconnects = n
	}
}

// ApplyAssignment installs the scheduler's reply: shadowed tracks are
// demoted, and the horizon's priority order replaces the old one. A
// successful assignment also clears degraded mode — the scheduler is
// answering again.
func (r *Runtime) ApplyAssignment(a *cluster.Assignment) error {
	if a == nil {
		return fmt.Errorf("node: nil assignment")
	}
	// A shard-scoped assignment (Roster present) carries a priority
	// over the shard's global camera indices rather than a 0..M-1
	// permutation; the scoped policy skips foreign-shard cameras in
	// coverage sets so ownership stays communication-free within the
	// shard.
	var policy *core.DistributedPolicy
	var err error
	if len(a.Roster) > 0 {
		policy, err = core.NewScopedPolicy(a.Priority)
	} else {
		policy, err = core.NewDistributedPolicy(a.Priority)
	}
	if err != nil {
		return fmt.Errorf("node: %w", err)
	}
	if len(a.Dead) > 0 {
		// The scheduler's liveness leases feed the distributed stage:
		// every node installs the identical dead set, so failover
		// ownership decisions stay communication-free.
		// Size the mask by the largest camera index on the wire, not
		// len(Priority): a scoped assignment's priority holds sparse
		// global indices, and the dead set may name foreign-shard
		// cameras (whose entries the scoped policy simply ignores).
		maxCam := -1
		for _, c := range a.Priority {
			if c > maxCam {
				maxCam = c
			}
		}
		for _, c := range a.Dead {
			if c > maxCam {
				maxCam = c
			}
		}
		mask := make([]bool, maxCam+1)
		for _, c := range a.Dead {
			if c >= 0 {
				mask[c] = true
			}
		}
		policy.SetDead(mask)
	}
	r.policy = policy
	r.degraded = false
	// Apply the scheduler's degradation rung: cap the sizes future
	// spawns and key-frame refreshes quantize to. Level 0 (or an
	// assignment from a pre-adapt scheduler) restores the full set.
	if a.AdaptLevel != r.adaptLevel {
		r.adaptLevel = a.AdaptLevel
		r.adaptTransitions++
		r.tracker.SetSizeCap(adapt.SizeCapFor(r.adaptLevel))
	}
	for _, sh := range a.Shadows {
		t := r.tracker.Get(sh.TrackID)
		if t == nil {
			continue // dropped since the report; nothing to demote
		}
		r.shadows = append(r.shadows, &shadow{
			box:      t.Box,
			vel:      t.Velocity,
			truthID:  t.TruthID,
			assigned: sh.AssignedCamera,
			size:     t.QuantSize,
		})
		r.tracker.Remove(sh.TrackID)
	}
	return nil
}

// RegularFrame runs one regular-frame step: advance shadows, inspect
// active track regions plus owned new regions, update the tracker, and
// apply the distributed-stage ownership rules. It returns the frame's
// modelled inference latency.
func (r *Runtime) RegularFrame(obs []scene.Observation) (time.Duration, error) {
	// Advance shadows.
	alive := r.shadows[:0]
	for _, sh := range r.shadows {
		sh.box = sh.box.Translate(sh.vel)
		if r.frame.Contains(sh.box.Center()) {
			alive = append(alive, sh)
		}
	}
	r.shadows = alive

	tracks := r.tracker.Tracks()
	regions := make([]geom.Rect, 0, len(tracks))
	tasks := make([]gpu.Task, 0, len(tracks))
	explained := make([]geom.Rect, 0, len(tracks)+len(r.shadows))
	for _, t := range tracks {
		regions = append(regions, r.tracker.Region(t))
		tasks = append(tasks, gpu.Task{ObjectID: t.ID, Size: t.QuantSize})
		explained = append(explained, t.Predicted())
	}
	for _, sh := range r.shadows {
		explained = append(explained, sh.box)
	}

	// New-region proposals, mask-filtered before inspection.
	moving := make([]geom.Rect, 0, len(obs))
	for _, o := range obs {
		moving = append(moving, o.Box)
	}
	for _, nr := range flow.NewRegions(moving, explained, 0) {
		if !r.ownsCell(nr.Center()) {
			continue
		}
		q, size := geom.QuantizeRect(nr, r.frame, nil)
		regions = append(regions, q)
		tasks = append(tasks, gpu.Task{ObjectID: -1, Size: size})
	}

	res, err := r.exec.RunFrame(tasks)
	if err != nil {
		return 0, fmt.Errorf("node: inspection: %w", err)
	}
	r.latencySum += res.Latency
	r.frames++
	if r.degraded {
		r.degradedFrames++
	}

	dets, err := r.det.DetectRegions(regions, obs)
	if err != nil {
		return 0, fmt.Errorf("node: detect: %w", err)
	}
	for _, d := range dets {
		r.detected[d.TruthID] = true
	}
	created, err := r.tracker.Update(dets)
	if err != nil {
		return 0, fmt.Errorf("node: tracking: %w", err)
	}
	for _, id := range created {
		t := r.tracker.Get(id)
		if t != nil && !r.ownsCell(t.Box.Center()) {
			r.tracker.Remove(id)
		}
	}
	r.takeoverCheck()
	r.emit(res.Latency, len(res.Batches), res.Images, gpu.BatchOccupancy(res.Batches, r.exec.Profile()))
	return res.Latency, nil
}

// ownsCell reports whether this camera is the mask owner of the cell
// containing the point. Without coverage data (scheduler did not send
// masks) the camera owns everything it sees.
func (r *Runtime) ownsCell(centre geom.Point) bool {
	if len(r.coverage) == 0 {
		return true
	}
	cell, _ := r.grid.CellIndex(centre)
	return r.policy.ShouldTrack(r.camera, r.coverage[cell])
}

func (r *Runtime) takeoverCheck() {
	if len(r.coverage) == 0 {
		return
	}
	alive := r.shadows[:0]
	for _, sh := range r.shadows {
		cell, inside := r.grid.CellIndex(sh.box.Center())
		if !inside {
			continue
		}
		cover := r.coverage[cell]
		assignedSees := false
		for _, c := range cover {
			if c == sh.assigned {
				assignedSees = true
				break
			}
		}
		// Same failover rule as the pipeline: an owner that is covered
		// but dead is treated as having lost the object.
		deadOwner := assignedSees && r.policy.Dead(sh.assigned)
		if assignedSees && !deadOwner {
			alive = append(alive, sh)
			continue
		}
		if r.policy.ShouldTrack(r.camera, cover) {
			if deadOwner {
				r.reassignments++
			}
			r.tracker.Spawn(vision.Detection{Box: sh.box, Score: 0.5, TruthID: sh.truthID})
			continue
		}
		if owner, ok := r.policy.Owner(cover); ok {
			sh.assigned = owner
			alive = append(alive, sh)
		}
	}
	r.shadows = alive
}

// Stats summarizes the node's run so far.
type Stats struct {
	// Frames processed.
	Frames int
	// MeanLatency is the mean modelled inference latency per frame.
	MeanLatency time.Duration
	// ActiveTracks is the current live track count.
	ActiveTracks int
	// Shadows is the current shadow count.
	Shadows int
	// DetectedObjects is the number of distinct ground-truth objects this
	// node has detected at least once.
	DetectedObjects int
	// DegradedFrames is how many frames ran in degraded mode (no
	// scheduler assignment; see EnterDegraded).
	DegradedFrames int
	// Reconnects is the client's cumulative reconnect count, as recorded
	// by NoteReconnects.
	Reconnects int
	// OutageFrames is how many frames were lost to camera faults (see
	// OutageFrame).
	OutageFrames int
	// Reassignments counts shadow promotions because the scheduler
	// declared the owning camera dead.
	Reassignments int
	// AdaptLevel is the degradation rung currently applied;
	// AdaptTransitions counts the level changes applied so far.
	AdaptLevel       int
	AdaptTransitions int
}

// Stats returns the node's running counters.
func (r *Runtime) Stats() Stats {
	s := Stats{
		Frames:           r.frames,
		ActiveTracks:     r.tracker.Len(),
		Shadows:          len(r.shadows),
		DetectedObjects:  len(r.detected),
		DegradedFrames:   r.degradedFrames,
		Reconnects:       r.reconnects,
		OutageFrames:     r.outageFrames,
		Reassignments:    r.reassignments,
		AdaptLevel:       r.adaptLevel,
		AdaptTransitions: r.adaptTransitions,
	}
	if r.frames > 0 {
		s.MeanLatency = r.latencySum / time.Duration(r.frames)
	}
	return s
}

// DetectedIDs returns the set of ground-truth objects seen so far
// (scoring only).
func (r *Runtime) DetectedIDs() map[int]bool {
	out := make(map[int]bool, len(r.detected))
	for k := range r.detected {
		out[k] = true
	}
	return out
}
