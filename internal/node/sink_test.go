package node

import (
	"testing"

	"mvs/internal/cluster"
	"mvs/internal/metrics"
)

// TestNodeSinkSnapshots runs the standalone loop with a sink attached
// and checks the per-frame snapshot stream: one snapshot per processed
// frame, gap-free Seq, SourceNode with the camera label, and a single
// per-camera entry whose latency matches the frame's.
func TestNodeSinkSnapshots(t *testing.T) {
	world := twoCamWorld(3)
	trace, err := world.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	sink := metrics.NewChannelSink(1, len(trace.Frames)+1)
	cfg := baseConfig(0)
	cfg.Sink = sink
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	latencies := make(map[int]int64) // frame -> modelled latency (regular frames)
	for fi := range trace.Frames {
		obs := trace.Frames[fi].PerCamera[0]
		if fi%10 == 0 {
			reports, err := rt.KeyFrame(obs)
			if err != nil {
				t.Fatal(err)
			}
			keep := make([]int, len(reports))
			for i, r := range reports {
				keep[i] = r.TrackID
			}
			if err := rt.ApplyAssignment(&cluster.Assignment{Frame: fi, Keep: keep, Priority: []int{0, 1}}); err != nil {
				t.Fatal(err)
			}
		} else {
			lat, err := rt.RegularFrame(obs)
			if err != nil {
				t.Fatal(err)
			}
			latencies[fi] = int64(lat)
		}
	}
	sink.Close()
	if sink.Dropped() != 0 {
		t.Fatalf("dropped %d snapshots with a full-size buffer", sink.Dropped())
	}

	var snaps []metrics.Snapshot
	for snap := range sink.Snapshots() {
		snaps = append(snaps, snap)
	}
	if len(snaps) != len(trace.Frames) {
		t.Fatalf("snapshots = %d, want %d", len(snaps), len(trace.Frames))
	}
	for i, snap := range snaps {
		if snap.Seq != i || snap.Frame != i {
			t.Fatalf("snapshot %d: seq=%d frame=%d", i, snap.Seq, snap.Frame)
		}
		if snap.Source != metrics.SourceNode {
			t.Fatalf("snapshot %d: source = %q", i, snap.Source)
		}
		if snap.Label != "camera0" {
			t.Fatalf("snapshot %d: label = %q", i, snap.Label)
		}
		if len(snap.Cameras) != 1 || snap.Cameras[0].Camera != 0 {
			t.Fatalf("snapshot %d: cameras = %+v", i, snap.Cameras)
		}
		cs := snap.Cameras[0]
		if cs.Latency != snap.FrameLatency {
			t.Fatalf("snapshot %d: camera latency %v != frame latency %v", i, cs.Latency, snap.FrameLatency)
		}
		if want, ok := latencies[i]; ok && int64(cs.Latency) != want {
			t.Fatalf("snapshot %d: latency %d != RegularFrame's %d", i, int64(cs.Latency), want)
		}
		if i%10 == 0 && cs.Batches != 0 {
			t.Fatalf("key frame %d launched %d partial batches", i, cs.Batches)
		}
		if cs.BatchOccupancy < 0 || cs.BatchOccupancy > 1 {
			t.Fatalf("snapshot %d: occupancy = %v", i, cs.BatchOccupancy)
		}
	}
	// Cumulative detected counter ends at the node's final stat.
	if got, want := snaps[len(snaps)-1].Detected, rt.Stats().DetectedObjects; got != want {
		t.Fatalf("final detected = %d, stats say %d", got, want)
	}
}
