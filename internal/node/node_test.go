package node

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"mvs/internal/assoc"
	"mvs/internal/cluster"
	"mvs/internal/geom"
	"mvs/internal/profile"
	"mvs/internal/scene"
)

func twoCamWorld(seed int64) *scene.World {
	road := scene.MustPath(geom.Point{X: 5, Y: -40}, geom.Point{X: 5, Y: 40})
	camA := &scene.Camera{
		Name: "a", Pos: geom.Point{X: 0, Y: -50}, Height: 8, Yaw: math.Pi / 2,
		Pitch: 0.4, Focal: 1000, ImageW: 1280, ImageH: 704, MaxRange: 62,
	}
	camB := &scene.Camera{
		Name: "b", Pos: geom.Point{X: 0, Y: 50}, Height: 8, Yaw: -math.Pi / 2,
		Pitch: 0.4, Focal: 1000, ImageW: 1280, ImageH: 704, MaxRange: 62,
	}
	return &scene.World{
		Routes:  []scene.Route{{Path: road, Speed: 8, Arrivals: scene.Poisson{RatePerSec: 0.5}}},
		Cameras: []*scene.Camera{camA, camB},
		FPS:     10, Seed: seed,
	}
}

func baseConfig(cam int) Config {
	return Config{
		Camera:     cam,
		Frame:      geom.Rect{MaxX: 1280, MaxY: 704},
		Profile:    profile.Derived(profile.JetsonXavier),
		GridCols:   16,
		GridRows:   9,
		NumCameras: 2,
		Seed:       9,
	}
}

func TestNewValidation(t *testing.T) {
	cfg := baseConfig(0)
	cfg.Frame = geom.Rect{}
	if _, err := New(cfg); err == nil {
		t.Fatal("empty frame accepted")
	}
	cfg = baseConfig(0)
	cfg.NumCameras = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero cameras accepted")
	}
	cfg = baseConfig(0)
	cfg.Profile = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("nil profile accepted")
	}
	cfg = baseConfig(0)
	cfg.Coverage = [][]int{{0}} // wrong cell count
	if _, err := New(cfg); err == nil {
		t.Fatal("coverage/grid mismatch accepted")
	}
}

func TestStandaloneLoopWithoutMasks(t *testing.T) {
	// Without coverage, the node behaves like BALB-Ind: it owns
	// everything it sees.
	world := twoCamWorld(3)
	trace, err := world.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(baseConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	for fi := range trace.Frames {
		obs := trace.Frames[fi].PerCamera[0]
		if fi%10 == 0 {
			reports, err := rt.KeyFrame(obs)
			if err != nil {
				t.Fatal(err)
			}
			// Standalone: apply an identity assignment (keep all).
			keep := make([]int, len(reports))
			for i, r := range reports {
				keep[i] = r.TrackID
			}
			err = rt.ApplyAssignment(&cluster.Assignment{Frame: fi, Keep: keep, Priority: []int{0, 1}})
			if err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := rt.RegularFrame(obs); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := rt.Stats()
	if st.Frames != 200 {
		t.Fatalf("frames = %d", st.Frames)
	}
	if st.MeanLatency <= 0 {
		t.Fatalf("mean latency = %v", st.MeanLatency)
	}
	if st.DetectedObjects == 0 {
		t.Fatal("nothing detected")
	}
}

func TestApplyAssignmentDemotesShadows(t *testing.T) {
	rt, err := New(baseConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	obs := []scene.Observation{
		{ObjectID: 1, Box: geom.Rect{MinX: 100, MinY: 100, MaxX: 160, MaxY: 150}},
	}
	reports, err := rt.KeyFrame(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
	err = rt.ApplyAssignment(&cluster.Assignment{
		Frame:    0,
		Shadows:  []cluster.ShadowOrder{{TrackID: reports[0].TrackID, AssignedCamera: 1}},
		Priority: []int{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.ActiveTracks != 0 || st.Shadows != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestApplyAssignmentErrors(t *testing.T) {
	rt, err := New(baseConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.ApplyAssignment(nil); err == nil {
		t.Fatal("nil assignment accepted")
	}
	if err := rt.ApplyAssignment(&cluster.Assignment{Priority: []int{0, 0}}); err == nil {
		t.Fatal("bad priority accepted")
	}
	// Shadow for an unknown track is ignored, not an error.
	if err := rt.ApplyAssignment(&cluster.Assignment{
		Priority: []int{0, 1},
		Shadows:  []cluster.ShadowOrder{{TrackID: 999, AssignedCamera: 1}},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDistributedMatchesSchedulerEndToEnd drives two node runtimes
// against a real scheduler over loopback TCP for several horizons and
// checks the joint outcome: consistent priorities, no double tracking of
// shadowed objects, and overall detection coverage.
func TestDistributedMatchesSchedulerEndToEnd(t *testing.T) {
	world := twoCamWorld(5)
	trace, err := world.Run(600)
	if err != nil {
		t.Fatal(err)
	}
	train, test := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{})
	if err != nil {
		t.Fatal(err)
	}
	profiles := []*profile.Profile{
		profile.Derived(profile.JetsonXavier),
		profile.Derived(profile.JetsonNano),
	}
	sched, err := cluster.NewScheduler(model, profiles, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = sched.Serve(ln) }()
	defer func() {
		sched.Close()
		ln.Close()
	}()

	runCam := func(cam int, errOut *error, detected *map[int]bool, wg *sync.WaitGroup) {
		defer wg.Done()
		sc := world.Cameras[cam]
		client, err := cluster.Dial(ln.Addr().String(), cam, 5*time.Second, sc.ImageW, sc.ImageH)
		if err != nil {
			*errOut = err
			return
		}
		defer client.Close()
		ack := client.Ack()
		rt, err := New(Config{
			Camera: cam, Frame: sc.Frame(), Profile: profiles[cam],
			GridCols: ack.GridCols, GridRows: ack.GridRows, Coverage: ack.Coverage,
			NumCameras: 2, Seed: 4,
		})
		if err != nil {
			*errOut = err
			return
		}
		for fi := range test.Frames {
			obs := test.Frames[fi].PerCamera[cam]
			if fi%10 == 0 {
				reports, err := rt.KeyFrame(obs)
				if err != nil {
					*errOut = err
					return
				}
				a, err := client.KeyFrame(fi, reports, 10*time.Second)
				if err != nil {
					*errOut = err
					return
				}
				if err := rt.ApplyAssignment(a); err != nil {
					*errOut = err
					return
				}
			} else if _, err := rt.RegularFrame(obs); err != nil {
				*errOut = err
				return
			}
		}
		*detected = rt.DetectedIDs()
	}

	var wg sync.WaitGroup
	var err0, err1 error
	var det0, det1 map[int]bool
	wg.Add(2)
	go runCam(0, &err0, &det0, &wg)
	go runCam(1, &err1, &det1, &wg)
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("node errors: %v / %v", err0, err1)
	}

	// Joint recall over the test half must stay high: every ground-truth
	// object visible somewhere should be detected by some node.
	truth := make(map[int]bool)
	for fi := range test.Frames {
		for id := range test.Frames[fi].VisibleObjectIDs() {
			truth[id] = true
		}
	}
	missed := 0
	for id := range truth {
		if !det0[id] && !det1[id] {
			missed++
		}
	}
	if len(truth) == 0 {
		t.Skip("no objects in test half")
	}
	if frac := float64(missed) / float64(len(truth)); frac > 0.1 {
		t.Fatalf("missed %d/%d distinct objects", missed, len(truth))
	}
}
