package mvs

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsLinks verifies the documentation cross-reference graph:
// every intra-repo markdown link in the root *.md files and docs/*.md
// resolves to an existing file (and, for markdown targets with a
// #fragment, to an existing heading), and no unresolved wiki-style
// [[...]] placeholder survives. CI runs it as its own step so a broken
// docs link fails fast, before the build.
func TestDocsLinks(t *testing.T) {
	var files []string
	for _, pattern := range []string{"*.md", filepath.Join("docs", "*.md")} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			// ISSUE.md is the per-PR task spec, not documentation; it
			// quotes link syntax literally.
			if filepath.Base(m) == "ISSUE.md" {
				continue
			}
			files = append(files, m)
		}
	}
	if len(files) < 5 {
		t.Fatalf("found only %d markdown files — glob broken?", len(files))
	}

	linkRE := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	wikiRE := regexp.MustCompile(`\[\[[^\]]+\]\]`)
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		text := string(raw)
		if dangling := wikiRE.FindAllString(text, -1); len(dangling) > 0 {
			t.Errorf("%s: unresolved wiki-style links %v", file, dangling)
		}
		for _, m := range linkRE.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue // external; not this test's job to probe the network
			}
			path, fragment, _ := strings.Cut(target, "#")
			if path == "" {
				// Same-file anchor.
				if fragment != "" && !hasAnchor(text, fragment) {
					t.Errorf("%s: links missing same-file anchor #%s", file, fragment)
				}
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), path)
			info, err := os.Stat(resolved)
			if err != nil {
				t.Errorf("%s: link target %q does not resolve (%v)", file, target, err)
				continue
			}
			if fragment != "" && !info.IsDir() && strings.HasSuffix(path, ".md") {
				dest, err := os.ReadFile(resolved)
				if err != nil {
					t.Fatal(err)
				}
				if !hasAnchor(string(dest), fragment) {
					t.Errorf("%s: %q has no heading for anchor #%s", file, path, fragment)
				}
			}
		}
	}
}

// hasAnchor reports whether the markdown text contains a heading whose
// GitHub-style slug equals the fragment.
func hasAnchor(text, fragment string) bool {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if slugify(heading) == fragment {
			return true
		}
	}
	return false
}

// slugify approximates GitHub's heading-anchor rule: lowercase, drop
// everything but letters/digits/spaces/hyphens, spaces become hyphens.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}
