module mvs

go 1.22
